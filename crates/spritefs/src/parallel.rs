//! The parallel deterministic simulation engine.
//!
//! [`Cluster::run_parallel`] shards the data plane of the event loop
//! across worker threads while keeping every observable byte identical
//! to the sequential engine at any thread count. The split follows the
//! paper's own RPC boundary:
//!
//! * The **coordinator** (the calling thread) runs the unchanged
//!   sequential control plane in global operation order: open-file
//!   tables, version stamps, server consistency state (opens, last
//!   writer, tokens, cache disabling), fault scheduling, and — crucially
//!   — all trace-record emission. Trace bytes therefore never depend on
//!   worker timing.
//! * **Shard workers** own disjoint groups of clients' data planes
//!   ([`crate::client::ClientData`]: block cache, memory manager, VM
//!   process table, kernel counters). The coordinator packages every
//!   data-movement effect as a [`ClientTask`] tagged with a global
//!   dispatch id and pushes it to the owning worker's queue; per-client
//!   effects are independent across clients, so per-queue FIFO order is
//!   exactly sequential order for all state a worker can see.
//! * **Server caches** are not simulated during the parallel run at
//!   all. Both the coordinator (paging, server daemon ticks) and the
//!   workers (block fetches, write-backs) append their server-cache
//!   effects to event logs keyed `(dispatch id, intra-task seq)`; after
//!   the workers join, the logs are k-way merged back into the exact
//!   sequential interleaving ([`sdfs_simkit::merge_sorted_by`]) and
//!   replayed — one thread per server — against the real [`Server`]s.
//!
//! Two values flow "backwards" from state a worker owns into results:
//! server-cache *hit* flags (consumed only by obs latency modeling) and
//! client file sizes at write-back time. The first is moot because
//! observed runs force the sequential engine (below); the second is
//! solved by a worker-local size mirror fed from the sizes carried on
//! `Write`/`DropFile` tasks, exact for every file a client holds dirty
//! blocks of (any other writer is ordered behind a flush/invalidate in
//! this client's own queue — recall, token downgrade, cache disable,
//! truncate, delete).
//!
//! Runs with the sanitizer, the observer, or fault injection force the
//! sequential engine: those subsystems deliberately read cross-client
//! state at arbitrary points (deep audits, ring buffers, crash
//! teardown) and are verification/diagnostic modes, not the measured
//! fast path. Partition plans in particular keep per-edge cut state,
//! lease expiries, and deferred revocations on the coordinator
//! (`FaultState`), which every RPC consults — sharding clients across
//! workers would race that single clock, so `--threads N` with a fault
//! plan silently runs sequentially (and stays byte-identical, which
//! `scripts/verify.sh` gates).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use sdfs_simkit::{merge_sorted_by, CounterSet, FastMap, SimTime};
use sdfs_trace::{FileId, Pid};

use crate::cache::BlockKey;
use crate::client::ClientData;
use crate::cluster::{run_client_task, CleanReason, Cluster, ServerAccess, TraceSink};
use crate::config::Config;
use crate::ops::AppOp;
use crate::server::Server;

/// Tasks are shipped to workers in batches of this size to amortize
/// queue locking; the batch boundary carries no meaning.
const BATCH: usize = 256;

/// One data-plane effect for a single client. Dispatched inline by the
/// sequential engine or queued to the owning shard worker.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ClientTask {
    /// A cached read (file data or paging, per `paging`).
    Read {
        file: FileId,
        offset: u64,
        len: u64,
        si: usize,
        paging: bool,
        migrated: bool,
    },
    /// A cached write. `old_size`/`new_size` are the file's size before
    /// and after the control plane applied the metadata update;
    /// `new_size` feeds the worker's size mirror.
    Write {
        file: FileId,
        offset: u64,
        len: u64,
        old_size: u64,
        new_size: u64,
        si: usize,
        write_through: bool,
        migrated: bool,
    },
    /// Flush every dirty block of `file` (fsync, recall, disable).
    FlushFile { file: FileId, reason: CleanReason },
    /// Drop every cached block of `file`; `stale` counts it as a
    /// consistency invalidation.
    Invalidate { file: FileId, stale: bool },
    /// Delete/truncate: drop blocks and forget the mirrored size.
    DropFile { file: FileId },
    /// Process start (VM page acquisition, code/data faults).
    ProcStart {
        pid: Pid,
        exec: FileId,
        code_bytes: u64,
        data_bytes: u64,
        heap_bytes: u64,
        si: usize,
        migrated: bool,
    },
    /// Process exit (VM release, shared-text bookkeeping).
    ProcExit { pid: Pid },
    /// The write-back daemon's per-client scan-and-flush.
    DaemonFlush { cutoff: SimTime },
    /// One Table 4 cache-size sample.
    Sample { active: bool },
}

/// A [`ClientTask`] stamped with its global dispatch id and time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubTask {
    /// Global dispatch sequence number (shared with server events).
    pub id: u64,
    /// Simulated time at dispatch.
    pub now: SimTime,
    /// The effect.
    pub kind: ClientTask,
}

/// Maximum sub-tasks coalesced into one dispatch round, bounding how
/// long the coordinator holds work back from a worker.
pub(crate) const ROUND_CAP: usize = 64;

/// One dispatch round: a maximal run of consecutive tasks for the same
/// client in one worker's queue, handed over as a unit. Fast-path
/// opens/closes dispatch no cross-client traffic, so calm stretches of
/// a client's ops coalesce into long rounds; slow-path consistency
/// actions (recalls, invalidates) break runs by interleaving other
/// clients' tasks. Purely transport + accounting: every sub-task keeps
/// its own global dispatch id, so server-event replay order is
/// *identical* to uncoalesced dispatch by construction.
#[derive(Debug)]
pub(crate) struct Task {
    /// The client every sub-task belongs to.
    pub ci: u16,
    /// The round's sub-tasks, in dispatch order.
    pub kind: TaskKind,
}

/// Round payload: the single-task case avoids a heap allocation (most
/// rounds are singletons — daemon ticks and samples alternate clients).
#[derive(Debug)]
pub(crate) enum TaskKind {
    /// A singleton round.
    One(SubTask),
    /// A coalesced round of two or more sub-tasks.
    Round(Vec<SubTask>),
}

/// A deferred server-cache effect, replayed after the workers join.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SrvEventKind {
    /// A block read served from cache or disk.
    Read { key: BlockKey, bytes: u64 },
    /// A block write accepted into the server cache.
    Write { key: BlockKey, bytes: u64 },
    /// Delete/truncate dropping the file's blocks.
    DropFile { file: FileId },
    /// The server's own delayed write-back of expired dirty blocks.
    TickFlush { cutoff: SimTime },
}

/// One server-cache effect with its deterministic replay key.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SrvEvent {
    /// Dispatch id of the task (or control-plane call) that caused it.
    pub id: u64,
    /// Ordinal within that task (a task can touch a server repeatedly).
    pub subseq: u32,
    /// Destination server.
    pub si: u16,
    /// Simulated time of the effect.
    pub now: SimTime,
    /// The effect.
    pub kind: SrvEventKind,
}

/// A blocking MPSC queue of task batches (one per worker).
#[derive(Debug, Default)]
pub(crate) struct TaskQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct QueueInner {
    batches: VecDeque<Vec<Task>>,
    closed: bool,
}

impl TaskQueue {
    fn push_batch(&self, batch: Vec<Task>) {
        let mut inner = self.inner.lock().expect("task queue poisoned");
        inner.batches.push_back(batch);
        drop(inner);
        self.ready.notify_one();
    }

    fn pop_batch(&self) -> Option<Vec<Task>> {
        let mut inner = self.inner.lock().expect("task queue poisoned");
        loop {
            if let Some(batch) = inner.batches.pop_front() {
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("task queue poisoned");
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().expect("task queue poisoned");
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

/// Work-division statistics of the most recent parallel run, for the
/// bench harness: how the data plane split across shard workers. Fully
/// deterministic — task routing is `client % workers`, independent of
/// thread timing.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Shard worker count used by the run.
    pub workers: usize,
    /// Data-plane tasks executed by each worker.
    pub tasks_per_worker: Vec<u64>,
    /// Dispatch rounds handed to each worker (consecutive same-client
    /// tasks coalesce into one round, up to a cap).
    pub rounds_per_worker: Vec<u64>,
    /// Deferred server-cache events replayed after the join.
    pub srv_events: u64,
    /// Control-plane operations the coordinator walked during the run
    /// (its busy share of the split, vs the workers' task counts).
    pub coordinator_ops: u64,
    /// Consistency fast-path admissions during the run (opens + closes;
    /// zero when [`crate::Config::consistency_fast_path`] is off).
    pub fastpath_hits: u64,
    /// Slow-path fallbacks during the run while the fast path was on.
    pub fastpath_misses: u64,
}

impl ParallelStats {
    /// Total data-plane tasks across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// The busiest worker's task count.
    pub fn max_worker_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().copied().max().unwrap_or(0)
    }

    /// Total dispatch rounds across all workers.
    pub fn total_rounds(&self) -> u64 {
        self.rounds_per_worker.iter().sum()
    }

    /// The busiest worker's round count — the data-plane critical path
    /// in dispatch-round units.
    pub fn max_worker_rounds(&self) -> u64 {
        self.rounds_per_worker.iter().copied().max().unwrap_or(0)
    }

    /// Fast-path hit rate in percent over the run's open/close
    /// decisions (0 when the fast path was off or nothing ran).
    pub fn fastpath_hit_rate_pct(&self) -> f64 {
        let total = self.fastpath_hits + self.fastpath_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.fastpath_hits as f64 / total as f64
        }
    }
}

/// An open (not yet sealed) dispatch round for one worker.
#[derive(Debug, Default)]
struct PendingRound {
    /// The round's client (meaningful while `subs` is non-empty).
    ci: u16,
    /// Accumulated sub-tasks; empty = no round open.
    subs: Vec<SubTask>,
}

/// Coordinator-side state of a queued (parallel) run.
#[derive(Debug)]
pub(crate) struct QueuedState {
    /// One queue per worker; client `ci` belongs to worker
    /// `ci % queues.len()`.
    queues: Vec<Arc<TaskQueue>>,
    /// Per-worker batch buffers awaiting a push.
    bufs: Vec<Vec<Task>>,
    /// Per-worker open dispatch round awaiting a seal.
    pending: Vec<PendingRound>,
    /// Next global dispatch id (shared by tasks and server events).
    next_id: u64,
    /// Control-path client counters, merged into the clients at join
    /// (exact: counter merge is a sorted-key sum).
    pub ctl: Vec<CounterSet>,
    /// Server-cache effects from control-plane call sites (paging,
    /// server daemon ticks).
    pub events: Vec<SrvEvent>,
    /// Tasks dispatched to each worker, for [`ParallelStats`].
    tasks: Vec<u64>,
    /// Dispatch rounds sealed for each worker, for [`ParallelStats`].
    rounds: Vec<u64>,
}

impl QueuedState {
    fn new(queues: Vec<Arc<TaskQueue>>, nclients: usize) -> Self {
        let nworkers = queues.len();
        QueuedState {
            queues,
            bufs: (0..nworkers).map(|_| Vec::with_capacity(BATCH)).collect(),
            pending: (0..nworkers).map(|_| PendingRound::default()).collect(),
            next_id: 0,
            ctl: (0..nclients).map(|_| CounterSet::new()).collect(),
            events: Vec::new(),
            tasks: vec![0; nworkers],
            rounds: vec![0; nworkers],
        }
    }

    /// Enqueues one task for client `ci`, stamping the next dispatch id.
    /// Consecutive tasks for the same client coalesce into the worker's
    /// open dispatch round; a task for a different client of the same
    /// worker seals it first.
    pub(crate) fn push_task(&mut self, ci: usize, now: SimTime, kind: ClientTask) {
        let id = self.next_id;
        self.next_id += 1;
        let w = ci % self.queues.len();
        self.tasks[w] += 1;
        let p = &mut self.pending[w];
        if !p.subs.is_empty() && (p.ci as usize != ci || p.subs.len() >= ROUND_CAP) {
            self.seal(w);
        }
        let p = &mut self.pending[w];
        p.ci = ci as u16;
        p.subs.push(SubTask { id, now, kind });
    }

    /// Seals worker `w`'s open dispatch round, if any, into its batch
    /// buffer. Singleton rounds keep the pending buffer's allocation.
    fn seal(&mut self, w: usize) {
        let p = &mut self.pending[w];
        let task = match p.subs.len() {
            0 => return,
            1 => Task {
                ci: p.ci,
                kind: TaskKind::One(p.subs.pop().expect("len checked")),
            },
            _ => Task {
                ci: p.ci,
                kind: TaskKind::Round(std::mem::take(&mut p.subs)),
            },
        };
        self.rounds[w] += 1;
        self.bufs[w].push(task);
        if self.bufs[w].len() >= BATCH {
            let batch = std::mem::replace(&mut self.bufs[w], Vec::with_capacity(BATCH));
            self.queues[w].push_batch(batch);
        }
    }

    /// Logs one control-plane server-cache effect at the next dispatch id.
    pub(crate) fn push_srv_event(&mut self, si: usize, kind: SrvEventKind, now: SimTime) {
        let id = self.next_id;
        self.next_id += 1;
        self.events.push(SrvEvent {
            id,
            subseq: 0,
            si: si as u16,
            now,
            kind,
        });
    }

    fn flush_all(&mut self) {
        for w in 0..self.queues.len() {
            self.seal(w);
            if !self.bufs[w].is_empty() {
                let batch = std::mem::take(&mut self.bufs[w]);
                self.queues[w].push_batch(batch);
            }
        }
    }

    fn close_all(&self) {
        for queue in &self.queues {
            queue.close();
        }
    }
}

/// Where data-plane work goes. See [`crate::cluster`]'s routing helpers.
#[derive(Debug)]
pub(crate) enum Route {
    /// Execute at the dispatch point (the sequential engine).
    Inline,
    /// Queue to shard workers (the parallel engine).
    Queued(Box<QueuedState>),
}

/// Worker-side [`ServerAccess`]: appends events instead of touching
/// servers. Reads report a cache hit — the flag's only consumer (obs
/// latency modeling) is off in parallel runs.
struct EventLog {
    events: Vec<SrvEvent>,
    cur_id: u64,
    subseq: u32,
}

impl ServerAccess for EventLog {
    fn serve_read(&mut self, si: usize, key: BlockKey, bytes: u64, now: SimTime) -> bool {
        self.events.push(SrvEvent {
            id: self.cur_id,
            subseq: self.subseq,
            si: si as u16,
            now,
            kind: SrvEventKind::Read { key, bytes },
        });
        self.subseq += 1;
        true
    }

    fn accept_write(&mut self, si: usize, key: BlockKey, bytes: u64, now: SimTime) {
        self.events.push(SrvEvent {
            id: self.cur_id,
            subseq: self.subseq,
            si: si as u16,
            now,
            kind: SrvEventKind::Write { key, bytes },
        });
        self.subseq += 1;
    }
}

/// What a shard worker hands back at join.
struct WorkerResult {
    /// The client data planes, indexed by client id (unowned slots None).
    datas: Vec<Option<Box<ClientData>>>,
    /// Server-cache effects in dispatch order.
    events: Vec<SrvEvent>,
    /// Happens-before verdict (`None` unless [`Config::racecheck`]).
    race: Option<crate::racecheck::RaceStats>,
}

/// A shard worker: drains its queue in order, running each task against
/// the owned client's data plane with deferred server access. Under
/// [`Config::racecheck`] the worker carries a [`Plane::Worker`] guard
/// context and a [`RaceLog`] verifying the dispatch-order contract.
///
/// [`Plane::Worker`]: crate::racecheck::Plane::Worker
/// [`RaceLog`]: crate::racecheck::RaceLog
fn worker_main(
    queue: &TaskQueue,
    mut datas: Vec<Option<Box<ClientData>>>,
    cfg: &Config,
    shard: u16,
    nworkers: usize,
) -> WorkerResult {
    let nservers = cfg.num_servers as usize;
    // Parallel runs never carry faults (forced sequential), so servers
    // are never down from a worker's point of view.
    let server_down = vec![false; nservers];
    let down_until = vec![SimTime::MAX; nservers];
    // Per-client file-size mirrors, fed by Write/DropFile tasks.
    let mut sizes: Vec<FastMap<FileId, u64>> = (0..datas.len()).map(|_| FastMap::default()).collect();
    let mut log = EventLog {
        events: Vec::new(),
        cur_id: 0,
        subseq: 0,
    };
    let mut race = cfg.racecheck.then(|| {
        crate::racecheck::install(crate::racecheck::Plane::Worker(shard));
        crate::racecheck::RaceLog::new(shard, nworkers)
    });
    let run_sub = |ci: usize,
                       sub: &SubTask,
                       datas: &mut Vec<Option<Box<ClientData>>>,
                       sizes: &mut Vec<FastMap<FileId, u64>>,
                       log: &mut EventLog| {
        match sub.kind {
            ClientTask::Write { file, new_size, .. } => {
                sizes[ci].insert(file, new_size);
            }
            ClientTask::DropFile { file } => {
                sizes[ci].remove(&file);
            }
            _ => {}
        }
        log.cur_id = sub.id;
        log.subseq = 0;
        let data = datas[ci].as_deref_mut().expect("task routed to owning worker");
        run_client_task(
            data,
            log,
            &sizes[ci],
            cfg,
            sub.now,
            &sub.kind,
            None,
            None,
            &server_down,
            &down_until,
            None,
        );
    };
    while let Some(batch) = queue.pop_batch() {
        for task in &batch {
            let ci = task.ci as usize;
            if let Some(rl) = race.as_mut() {
                rl.begin_round(task.ci);
                match &task.kind {
                    TaskKind::One(sub) => rl.observe(task.ci, sub.id, sub.now),
                    TaskKind::Round(subs) => {
                        for sub in subs {
                            rl.observe(task.ci, sub.id, sub.now);
                        }
                    }
                }
            }
            match &task.kind {
                TaskKind::One(sub) => run_sub(ci, sub, &mut datas, &mut sizes, &mut log),
                TaskKind::Round(subs) => {
                    for sub in subs {
                        run_sub(ci, sub, &mut datas, &mut sizes, &mut log);
                    }
                }
            }
        }
    }
    let race = race.map(|rl| {
        let (checks, violations, first) = crate::racecheck::uninstall();
        let mut stats = rl.into_stats();
        stats.accesses_checked += checks;
        stats.plane_violations += violations;
        if stats.first_violation.is_none() {
            stats.first_violation = first;
        }
        stats
    });
    WorkerResult {
        datas,
        events: log.events,
        race,
    }
}

impl<S: TraceSink> Cluster<S> {
    /// Executes an operation stream like [`Cluster::run`], sharding the
    /// data plane across `threads` worker threads. Output — trace
    /// bytes, counters, samples — is byte-identical to the sequential
    /// engine at any thread count.
    ///
    /// Falls back to the sequential engine when `threads <= 1` or when
    /// the sanitizer, the observer, or fault injection is active (those
    /// modes read cross-client state at arbitrary points and are not
    /// the measured fast path). The race checker
    /// ([`crate::Config::racecheck`]) deliberately does *not* force the
    /// fallback — its whole purpose is to check the parallel engine
    /// while it runs.
    pub fn run_parallel<I: IntoIterator<Item = AppOp>>(
        &mut self,
        ops: I,
        end: SimTime,
        threads: usize,
    ) {
        if threads <= 1 || self.san.is_some() || self.obs.is_some() || self.fault.is_some() {
            self.last_parallel = None;
            self.run(ops, end);
            return;
        }
        let nclients = self.clients.len();
        let nworkers = threads.min(nclients.max(1));

        // Hand each worker its clients' data planes (client ci belongs
        // to worker ci % nworkers).
        let mut shards: Vec<Vec<Option<Box<ClientData>>>> = (0..nworkers)
            .map(|_| (0..nclients).map(|_| None).collect())
            .collect();
        for ci in 0..nclients {
            shards[ci % nworkers][ci] = Some(self.clients[ci].detach_data());
        }
        let queues: Vec<Arc<TaskQueue>> = (0..nworkers)
            .map(|_| Arc::new(TaskQueue::default()))
            .collect();
        self.route = Route::Queued(Box::new(QueuedState::new(queues.clone(), nclients)));
        let cfg = self.cfg.clone();
        let ops_before = self.ops_applied();
        let fp_before = self.fastpath;

        let (mut qstate, results) = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .zip(&queues)
                .enumerate()
                .map(|(w, (shard, queue))| {
                    let queue = Arc::clone(queue);
                    let cfg = &cfg;
                    s.spawn(move || worker_main(&queue, shard, cfg, w as u16, nworkers))
                })
                .collect();
            // The unchanged sequential control loop; data-plane work and
            // server-cache effects are queued by the routing helpers.
            self.run(ops, end);
            let Route::Queued(mut qstate) = std::mem::replace(&mut self.route, Route::Inline)
            else {
                unreachable!("run_parallel installed the queued route")
            };
            qstate.flush_all();
            qstate.close_all();
            let results: Vec<WorkerResult> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (qstate, results)
        });

        // Reinstall the data planes and fold the control-path counters
        // into them (exact: counter merge sums per key).
        let mut streams: Vec<Vec<SrvEvent>> = Vec::with_capacity(results.len() + 1);
        for result in results {
            for (ci, slot) in result.datas.into_iter().enumerate() {
                if let Some(data) = slot {
                    self.clients[ci].attach_data(data);
                }
            }
            if let (Some(acc), Some(worker)) = (self.race.as_deref_mut(), result.race.as_ref()) {
                acc.merge(worker);
            }
            streams.push(result.events);
        }
        for (ci, ctl) in qstate.ctl.iter().enumerate() {
            self.clients[ci].data.metrics.counters.merge(ctl);
        }
        streams.push(std::mem::take(&mut qstate.events));
        if let Some(c) = self.causal.as_deref_mut() {
            // Fold the deferred server events into the causal trace.
            // Recording is aggregation-only (order-insensitive integer
            // sums keyed by dispatch id), so folding the out-of-order
            // worker streams here yields byte-identical aggregates to
            // the inline engine's in-order recording.
            for stream in &streams {
                for ev in stream {
                    let bytes = match ev.kind {
                        SrvEventKind::Read { bytes, .. } | SrvEventKind::Write { bytes, .. } => {
                            bytes
                        }
                        SrvEventKind::DropFile { .. } | SrvEventKind::TickFlush { .. } => 0,
                    };
                    c.record_event(ev.id, ev.si as usize, bytes);
                }
            }
        }
        let fp = self.fastpath;
        self.last_parallel = Some(ParallelStats {
            workers: nworkers,
            tasks_per_worker: std::mem::take(&mut qstate.tasks),
            rounds_per_worker: std::mem::take(&mut qstate.rounds),
            srv_events: streams.iter().map(|s| s.len() as u64).sum(),
            coordinator_ops: self.ops_applied() - ops_before,
            fastpath_hits: fp.hits() - fp_before.hits(),
            fastpath_misses: fp.misses() - fp_before.misses(),
        });

        // Replay the deferred server-cache effects in exact dispatch
        // order. Different servers' caches are independent, so each
        // server replays its own merged stream on its own thread.
        let nservers = self.servers.len();
        let mut per_server: Vec<Vec<Vec<SrvEvent>>> = (0..nservers).map(|_| Vec::new()).collect();
        for stream in streams {
            let mut split: Vec<Vec<SrvEvent>> = (0..nservers).map(|_| Vec::new()).collect();
            for ev in stream {
                split[ev.si as usize].push(ev);
            }
            for (si, events) in split.into_iter().enumerate() {
                if !events.is_empty() {
                    per_server[si].push(events);
                }
            }
        }
        let block_size = self.cfg.block_size;
        let checking = self.race.is_some();
        let replay_verdicts = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .servers
                .iter_mut()
                .zip(per_server)
                .map(|(server, streams)| {
                    s.spawn(move || replay_server(server, streams, block_size, checking))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker panicked"))
                .collect::<Vec<_>>()
        });
        if let Some(acc) = self.race.as_deref_mut() {
            for verdict in replay_verdicts.into_iter().flatten() {
                acc.merge(&verdict);
            }
        }
    }
}

/// Replays one server's merged event stream against its cache. With
/// `racecheck` set, verifies the merged keys are strictly monotonic
/// and returns the verdict.
fn replay_server(
    server: &mut Server,
    streams: Vec<Vec<SrvEvent>>,
    block_size: u64,
    racecheck: bool,
) -> Option<crate::racecheck::RaceStats> {
    let mut check = racecheck.then(crate::racecheck::ReplayCheck::default);
    let events = merge_sorted_by(streams, |e: &SrvEvent| (e.id, e.subseq));
    for ev in events {
        if let Some(c) = check.as_mut() {
            c.observe(ev.si, ev.id, ev.subseq);
        }
        match ev.kind {
            SrvEventKind::Read { key, bytes } => {
                server.serve_read(key, bytes, ev.now);
            }
            SrvEventKind::Write { key, bytes } => server.accept_write(key, bytes, ev.now),
            SrvEventKind::DropFile { file } => server.drop_file_blocks(file),
            SrvEventKind::TickFlush { cutoff } => server.flush_dirty_before(cutoff, block_size),
        }
    }
    check.map(crate::racecheck::ReplayCheck::into_stats)
}
