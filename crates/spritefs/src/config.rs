//! Cluster configuration.
//!
//! Defaults reproduce the measured environment of Section 2: about 40
//! diskless workstations with 24–32 Mbytes of memory, four file servers
//! with the main one holding 128 Mbytes, 4-Kbyte blocks, a 30-second
//! delayed-write policy scanned every 5 seconds, and a 20-minute virtual
//! memory preference window.

use sdfs_simkit::SimDuration;

/// Which cache-consistency mechanism the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyPolicy {
    /// Sprite's mechanism: version stamps on open, recall of dirty data
    /// from the last writer, and cache disabling during concurrent
    /// write-sharing. A disabled file stays uncacheable until every
    /// client has closed it.
    Sprite,
    /// Like [`ConsistencyPolicy::Sprite`], but a file becomes cacheable
    /// again as soon as enough closes have happened to end the concurrent
    /// write-sharing (the first alternative in Section 5.6).
    SpriteModified,
    /// A token-based scheme in the style of Locus/Echo/DEcorum: a file is
    /// always cacheable somewhere; conflicting opens trigger token
    /// recalls (the second alternative in Section 5.6).
    Token,
    /// NFS-style polling: cached data is trusted for a fixed interval;
    /// writes go through to the server almost immediately; stale reads
    /// are possible (the weak scheme simulated in Section 5.5).
    Polling {
        /// How long cached data is trusted before revalidation, in
        /// seconds (the paper simulates 3 and 60).
        interval_secs: u32,
    },
}

/// Latency model for the network between clients and servers.
///
/// The simulator does not feed latency back into the workload timing (the
/// workload generator owns timestamps), but the constants are used to
/// report latency estimates and mirror the paper's Section 5.3 argument
/// (a 4-Kbyte page fetch takes 6–7 ms over the Ethernet; a local disk
/// takes 20–30 ms).
#[derive(Debug, Clone, Copy)]
pub struct NetModel {
    /// Fixed cost per RPC, in microseconds.
    pub per_rpc_us: u64,
    /// Per-byte transfer cost, in nanoseconds per byte.
    pub per_byte_ns: u64,
}

impl NetModel {
    /// Time to move `bytes` in one RPC.
    pub fn rpc_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.per_rpc_us + bytes * self.per_byte_ns / 1000)
    }
}

/// Latency model for a server disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average positioning time per access, in microseconds.
    pub access_us: u64,
    /// Per-byte transfer cost, in nanoseconds per byte.
    pub per_byte_ns: u64,
}

impl DiskModel {
    /// Time to service one access of `bytes`.
    pub fn access_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.access_us + bytes * self.per_byte_ns / 1000)
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// File cache block size in bytes (Sprite used 4 Kbytes).
    pub block_size: u64,
    /// Virtual memory page size in bytes (also 4 Kbytes).
    pub page_size: u64,
    /// Number of diskless client workstations.
    pub num_clients: u16,
    /// Number of file servers.
    pub num_servers: u16,
    /// Physical memory per client, in bytes. Clients alternate between
    /// this and `client_mem_alt_bytes` to model the 24–32 Mbyte mix.
    pub client_mem_bytes: u64,
    /// Alternate client memory size (every third machine).
    pub client_mem_alt_bytes: u64,
    /// Memory reserved for the kernel and other fixed uses per client.
    pub reserved_bytes: u64,
    /// Server cache size in bytes (the main Sun 4 server had 128 Mbytes).
    pub server_cache_bytes: u64,
    /// Age at which dirty data is written back (30 seconds in Sprite).
    pub writeback_delay: SimDuration,
    /// Period of the write-back daemon scan (5 seconds in Sprite).
    pub daemon_period: SimDuration,
    /// How long a VM page must sit unreferenced before the file cache may
    /// claim it (20 minutes in Sprite).
    pub vm_preference_window: SimDuration,
    /// How long code pages of an exited program remain usable by a new
    /// invocation before the memory is reclaimed.
    pub code_retention: SimDuration,
    /// The consistency mechanism in force.
    pub consistency: ConsistencyPolicy,
    /// How often per-client cache sizes are sampled for Table 4.
    pub sample_period: SimDuration,
    /// Network latency model.
    pub net: NetModel,
    /// Server disk latency model.
    pub disk: DiskModel,
    /// Run the SpriteSan shadow-state sanitizer alongside the
    /// simulation. Adds a ground-truth oracle checked on every operation;
    /// results are unchanged (violations are reported out of band).
    pub sanitize: bool,
    /// Fault injection for sanitizer tests: skip the cache invalidation
    /// that Sprite consistency performs when an open detects a stale
    /// cached version. Never enable outside tests.
    pub fault_skip_invalidate: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            block_size: 4096,
            page_size: 4096,
            num_clients: 36,
            num_servers: 4,
            client_mem_bytes: 24 << 20,
            client_mem_alt_bytes: 32 << 20,
            reserved_bytes: 6 << 20,
            server_cache_bytes: 128 << 20,
            writeback_delay: SimDuration::from_secs(30),
            daemon_period: SimDuration::from_secs(5),
            vm_preference_window: SimDuration::from_mins(20),
            code_retention: SimDuration::from_mins(180),
            consistency: ConsistencyPolicy::Sprite,
            sample_period: SimDuration::from_secs(60),
            net: NetModel {
                // ~1.5 ms per RPC plus 10 Mbit/s Ethernet ≈ 0.8 µs/byte;
                // yields ~6.5 ms for a 4-Kbyte block, matching Section 5.3.
                per_rpc_us: 1_500,
                per_byte_ns: 1_200,
            },
            disk: DiskModel {
                // 1991-era disk: ~20 ms positioning, ~1.5 Mbyte/s media.
                access_us: 20_000,
                per_byte_ns: 650,
            },
            sanitize: false,
            fault_skip_invalidate: false,
        }
    }
}

impl Config {
    /// A reduced cluster for unit tests: 4 clients, 1 server, small
    /// memories, same policies.
    pub fn small() -> Self {
        Config {
            num_clients: 4,
            num_servers: 1,
            client_mem_bytes: 2 << 20,
            client_mem_alt_bytes: 2 << 20,
            reserved_bytes: 512 << 10,
            server_cache_bytes: 8 << 20,
            ..Config::default()
        }
    }

    /// Physical memory of client `index`, alternating sizes across the
    /// cluster to model the 24–32 Mbyte machine mix.
    pub fn client_mem(&self, index: u16) -> u64 {
        if index % 3 == 2 {
            self.client_mem_alt_bytes
        } else {
            self.client_mem_bytes
        }
    }

    /// Number of whole blocks in `bytes`.
    pub fn blocks_in(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }

    /// Validates internal consistency, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(format!(
                "block_size {} must be a power of two",
                self.block_size
            ));
        }
        if self.page_size != self.block_size {
            return Err("page_size must equal block_size (pages trade 1:1)".into());
        }
        if self.num_clients == 0 {
            return Err("need at least one client".into());
        }
        if self.num_servers == 0 {
            return Err("need at least one server".into());
        }
        if self.reserved_bytes >= self.client_mem_bytes
            || self.reserved_bytes >= self.client_mem_alt_bytes
        {
            return Err("reserved_bytes exceeds client memory".into());
        }
        if self.daemon_period > self.writeback_delay {
            return Err("daemon_period should not exceed writeback_delay".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        Config::default().validate().expect("default config valid");
        Config::small().validate().expect("small config valid");
    }

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.writeback_delay, SimDuration::from_secs(30));
        assert_eq!(c.daemon_period, SimDuration::from_secs(5));
        assert_eq!(c.vm_preference_window, SimDuration::from_mins(20));
        assert_eq!(c.server_cache_bytes, 128 << 20);
        assert_eq!(c.consistency, ConsistencyPolicy::Sprite);
    }

    #[test]
    fn memory_mix() {
        let c = Config::default();
        assert_eq!(c.client_mem(0), 24 << 20);
        assert_eq!(c.client_mem(1), 24 << 20);
        assert_eq!(c.client_mem(2), 32 << 20);
    }

    #[test]
    fn block_math() {
        let c = Config::default();
        assert_eq!(c.blocks_in(0), 0);
        assert_eq!(c.blocks_in(1), 1);
        assert_eq!(c.blocks_in(4096), 1);
        assert_eq!(c.blocks_in(4097), 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = Config {
            block_size: 1000,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            num_clients: 0,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            reserved_bytes: Config::default().client_mem_bytes,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            daemon_period: SimDuration::from_secs(60),
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn latency_models() {
        let c = Config::default();
        let fetch = c.net.rpc_time(4096);
        // Section 5.3: a 4-Kbyte page fetch takes about 6 to 7 ms.
        let ms = fetch.as_secs_f64() * 1e3;
        assert!((6.0..7.5).contains(&ms), "block fetch {ms} ms");
        let disk = c.disk.access_time(4096);
        let dms = disk.as_secs_f64() * 1e3;
        assert!((20.0..30.0).contains(&dms), "disk access {dms} ms");
    }
}
