//! Cluster configuration.
//!
//! Defaults reproduce the measured environment of Section 2: about 40
//! diskless workstations with 24–32 Mbytes of memory, four file servers
//! with the main one holding 128 Mbytes, 4-Kbyte blocks, a 30-second
//! delayed-write policy scanned every 5 seconds, and a 20-minute virtual
//! memory preference window.

use sdfs_simkit::{SimDuration, SimTime};

/// Which cache-consistency mechanism the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyPolicy {
    /// Sprite's mechanism: version stamps on open, recall of dirty data
    /// from the last writer, and cache disabling during concurrent
    /// write-sharing. A disabled file stays uncacheable until every
    /// client has closed it.
    Sprite,
    /// Like [`ConsistencyPolicy::Sprite`], but a file becomes cacheable
    /// again as soon as enough closes have happened to end the concurrent
    /// write-sharing (the first alternative in Section 5.6).
    SpriteModified,
    /// A token-based scheme in the style of Locus/Echo/DEcorum: a file is
    /// always cacheable somewhere; conflicting opens trigger token
    /// recalls (the second alternative in Section 5.6).
    Token,
    /// NFS-style polling: cached data is trusted for a fixed interval;
    /// writes go through to the server almost immediately; stale reads
    /// are possible (the weak scheme simulated in Section 5.5).
    Polling {
        /// How long cached data is trusted before revalidation, in
        /// seconds (the paper simulates 3 and 60).
        interval_secs: u32,
    },
}

/// Latency model for the network between clients and servers.
///
/// The simulator does not feed latency back into the workload timing (the
/// workload generator owns timestamps), but the constants are used to
/// report latency estimates and mirror the paper's Section 5.3 argument
/// (a 4-Kbyte page fetch takes 6–7 ms over the Ethernet; a local disk
/// takes 20–30 ms).
#[derive(Debug, Clone, Copy)]
pub struct NetModel {
    /// Fixed cost per RPC, in microseconds.
    pub per_rpc_us: u64,
    /// Per-byte transfer cost, in nanoseconds per byte.
    pub per_byte_ns: u64,
}

impl NetModel {
    /// Time to move `bytes` in one RPC.
    pub fn rpc_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.per_rpc_us + bytes * self.per_byte_ns / 1000)
    }
}

/// Latency model for a server disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average positioning time per access, in microseconds.
    pub access_us: u64,
    /// Per-byte transfer cost, in nanoseconds per byte.
    pub per_byte_ns: u64,
}

impl DiskModel {
    /// Time to service one access of `bytes`.
    pub fn access_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.access_us + bytes * self.per_byte_ns / 1000)
    }
}

/// One scheduled server outage: the server crashes at `at` and reboots
/// `down_for` later. The crash destroys the server's volatile state
/// (block cache, per-client consistency and open bookkeeping); disk
/// contents survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOutage {
    /// Index of the server that fails (`< num_servers`).
    pub server: u16,
    /// When the crash happens.
    pub at: SimTime,
    /// How long the server stays down before rebooting.
    pub down_for: SimDuration,
}

impl ServerOutage {
    /// When the server reboots and recovery begins.
    pub fn reboot_at(&self) -> SimTime {
        self.at + self.down_for
    }
}

/// One scheduled network partition: a set of client↔server edges is cut
/// at `at` and heals `heal_after` later. Both endpoints stay alive — the
/// server keeps serving reachable clients, the cut clients keep running
/// against their caches — but RPCs on a cut edge time out, and
/// consistency actions (recalls, invalidations) aimed across the cut
/// cannot be delivered until the heal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// When the edges are cut.
    pub at: SimTime,
    /// How long the partition lasts before the network heals.
    pub heal_after: SimDuration,
    /// The `(client, server)` edges cut by this partition.
    pub edges: Vec<(u16, u16)>,
}

impl Partition {
    /// When the partition heals and the cut edges reconnect.
    pub fn heal_at(&self) -> SimTime {
        self.at + self.heal_after
    }
}

/// A deterministic fault-injection plan.
///
/// Everything here is driven by the simulation clock and a seeded
/// [`sdfs_simkit::SimRng`] — never wall-clock time or OS entropy — so a
/// faulted run is exactly as reproducible as a fault-free one. With
/// [`Config::faults`] set to `None` (the default) no fault code runs and
/// the simulation output is byte-identical to a build without this
/// subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled server crashes and reboots. Outages of the same server
    /// must be chronological and must not overlap.
    pub outages: Vec<ServerOutage>,
    /// Scheduled network partitions (edges cut, both ends alive).
    pub partitions: Vec<Partition>,
    /// Probability that any single client→server RPC transmission is
    /// dropped and must be retransmitted after a timeout. `0.0` disables
    /// the drop machinery (and its RNG draws) entirely.
    pub drop_prob: f64,
    /// Seed for the per-RPC drop RNG.
    pub drop_seed: u64,
    /// How long a client waits for a reply before retransmitting.
    pub rpc_timeout: SimDuration,
    /// Base of the exponential backoff added before retry `k`
    /// (`retry_backoff * 2^k`).
    pub retry_backoff: SimDuration,
    /// Retransmissions attempted before the client declares the server
    /// unreachable and queues the operation for recovery.
    pub max_retries: u32,
    /// Lease TTL for cached-state grants. Every successful RPC on a
    /// client↔server edge implicitly renews the edge's lease; once a
    /// partition has kept the edge silent past the TTL, the server may
    /// unilaterally revoke the client's grants (and the client — whose
    /// clock agrees — discards them). Only consulted while a partition
    /// plan is active.
    pub lease_ttl: SimDuration,
    /// Run the pre-lease conservative recovery protocol instead: the
    /// server keeps state for unreachable clients and, on heal,
    /// re-validates everything with a crash-style Reregister/Reopen
    /// storm. Kept as the comparison baseline for the lease protocol.
    pub conservative_recovery: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            outages: Vec::new(),
            partitions: Vec::new(),
            drop_prob: 0.0,
            drop_seed: 0x5350_5249_5445_4653, // "SPRITEFS"
            rpc_timeout: SimDuration::from_secs(1),
            retry_backoff: SimDuration::from_secs(1),
            max_retries: 5,
            lease_ttl: SimDuration::from_secs(60),
            conservative_recovery: false,
        }
    }
}

impl FaultPlan {
    /// Total time a client spends before giving up on an unreachable
    /// server: every timeout plus the exponential backoff between tries.
    /// This bounds the stall charged to any one RPC during an outage.
    pub fn retry_budget(&self) -> SimDuration {
        let mut budget = SimDuration::ZERO;
        for k in 0..self.max_retries {
            budget += self.rpc_timeout + self.retry_backoff * (1u64 << k.min(16));
        }
        budget
    }

    /// Stall incurred by `retries` retransmissions of one RPC.
    pub fn retry_stall(&self, retries: u32) -> SimDuration {
        let mut stall = SimDuration::ZERO;
        for k in 0..retries.min(self.max_retries) {
            stall += self.rpc_timeout + self.retry_backoff * (1u64 << k.min(16));
        }
        stall
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// File cache block size in bytes (Sprite used 4 Kbytes).
    pub block_size: u64,
    /// Virtual memory page size in bytes (also 4 Kbytes).
    pub page_size: u64,
    /// Number of diskless client workstations.
    pub num_clients: u16,
    /// Number of file servers.
    pub num_servers: u16,
    /// Physical memory per client, in bytes. Clients alternate between
    /// this and `client_mem_alt_bytes` to model the 24–32 Mbyte mix.
    pub client_mem_bytes: u64,
    /// Alternate client memory size (every third machine).
    pub client_mem_alt_bytes: u64,
    /// Memory reserved for the kernel and other fixed uses per client.
    pub reserved_bytes: u64,
    /// Server cache size in bytes (the main Sun 4 server had 128 Mbytes).
    pub server_cache_bytes: u64,
    /// Age at which dirty data is written back (30 seconds in Sprite).
    pub writeback_delay: SimDuration,
    /// Period of the write-back daemon scan (5 seconds in Sprite).
    pub daemon_period: SimDuration,
    /// How long a VM page must sit unreferenced before the file cache may
    /// claim it (20 minutes in Sprite).
    pub vm_preference_window: SimDuration,
    /// How long code pages of an exited program remain usable by a new
    /// invocation before the memory is reclaimed.
    pub code_retention: SimDuration,
    /// The consistency mechanism in force.
    pub consistency: ConsistencyPolicy,
    /// How often per-client cache sizes are sampled for Table 4.
    pub sample_period: SimDuration,
    /// Network latency model.
    pub net: NetModel,
    /// Server disk latency model.
    pub disk: DiskModel,
    /// Run the SpriteSan shadow-state sanitizer alongside the
    /// simulation. Adds a ground-truth oracle checked on every operation;
    /// results are unchanged (violations are reported out of band).
    pub sanitize: bool,
    /// Run the sdfs-obs self-measurement layer alongside the
    /// simulation: sim-time spans, structured events, and per-RPC-kind
    /// latency histograms. Off by default; when off, output is
    /// byte-identical to builds that predate the layer.
    pub observe: bool,
    /// Run the PlaneCheck dynamic race checker alongside the
    /// simulation: plane-guard hooks on coordinator-owned state plus
    /// happens-before verification of the parallel engine's
    /// dispatch/replay ordering. Unlike the sanitizer, race checking
    /// runs *on* the parallel engine (that is the point); bookkeeping
    /// stays outside every counter set, so output is byte-identical to
    /// a plain run and the verdict is reported out of band.
    pub racecheck: bool,
    /// Capacity of the sdfs-obs structured event ring. Only the newest
    /// `obs_ring_capacity` events are retained; earlier ones are counted
    /// as dropped in the report. Irrelevant unless `observe` is set.
    pub obs_ring_capacity: usize,
    /// Fault injection for sanitizer tests: skip the cache invalidation
    /// that Sprite consistency performs when an open detects a stale
    /// cached version. Never enable outside tests.
    pub fault_skip_invalidate: bool,
    /// Deterministic fault-injection plan (server crash/reboot schedule,
    /// network partitions, and per-RPC message drops). `None` — the
    /// default — runs the cluster fault-free with byte-identical output
    /// to builds that predate the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Size of a battery-backed (NVRAM) server write buffer, in bytes.
    /// On a crash, the newest-dirty-first `server_nvram_bytes` of
    /// not-yet-on-disk data survive as if flushed — Section 5.4's
    /// proposed fix for delayed-write loss. `0` (the default) disables
    /// the buffer; delayed-write traffic savings are unaffected either
    /// way because the buffer only matters at crash time.
    pub server_nvram_bytes: u64,
    /// Control-plane consistency fast path: epoch-guarded per-file
    /// "calm" summaries let opens and closes of unshared files take an
    /// O(1) decision instead of the full consistency walk. Pure
    /// optimization — every output byte (trace records, counters,
    /// sanitizer verdict, obs report) is identical with it off; the
    /// slow path stays alive as the oracle and `verify.sh` cmp-gates
    /// the two against each other.
    pub consistency_fast_path: bool,
    /// Record the CausalProf dependency DAG alongside the run
    /// ([`crate::causal`]): coordinator op → dispatch round → worker
    /// task → deferred server-event replay, keyed by the engine's
    /// global dispatch ids and weighted in modeled sim time. Off by
    /// default; recording never changes simulation output (the trace is
    /// reported out of band), and the recorded bytes are identical at
    /// any thread count.
    pub causal: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            block_size: 4096,
            page_size: 4096,
            num_clients: 36,
            num_servers: 4,
            client_mem_bytes: 24 << 20,
            client_mem_alt_bytes: 32 << 20,
            reserved_bytes: 6 << 20,
            server_cache_bytes: 128 << 20,
            writeback_delay: SimDuration::from_secs(30),
            daemon_period: SimDuration::from_secs(5),
            vm_preference_window: SimDuration::from_mins(20),
            code_retention: SimDuration::from_mins(180),
            consistency: ConsistencyPolicy::Sprite,
            sample_period: SimDuration::from_secs(60),
            net: NetModel {
                // ~1.5 ms per RPC plus 10 Mbit/s Ethernet ≈ 0.8 µs/byte;
                // yields ~6.5 ms for a 4-Kbyte block, matching Section 5.3.
                per_rpc_us: 1_500,
                per_byte_ns: 1_200,
            },
            disk: DiskModel {
                // 1991-era disk: ~20 ms positioning, ~1.5 Mbyte/s media.
                access_us: 20_000,
                per_byte_ns: 650,
            },
            sanitize: false,
            observe: false,
            racecheck: false,
            obs_ring_capacity: crate::obs::RING_CAPACITY,
            fault_skip_invalidate: false,
            faults: None,
            server_nvram_bytes: 0,
            consistency_fast_path: true,
            causal: false,
        }
    }
}

impl Config {
    /// A reduced cluster for unit tests: 4 clients, 1 server, small
    /// memories, same policies.
    pub fn small() -> Self {
        Config {
            num_clients: 4,
            num_servers: 1,
            client_mem_bytes: 2 << 20,
            client_mem_alt_bytes: 2 << 20,
            reserved_bytes: 512 << 10,
            server_cache_bytes: 8 << 20,
            ..Config::default()
        }
    }

    /// Physical memory of client `index`, alternating sizes across the
    /// cluster to model the 24–32 Mbyte machine mix.
    pub fn client_mem(&self, index: u16) -> u64 {
        if index % 3 == 2 {
            self.client_mem_alt_bytes
        } else {
            self.client_mem_bytes
        }
    }

    /// Number of whole blocks in `bytes`.
    pub fn blocks_in(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }

    /// Validates internal consistency, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(format!(
                "block_size {} must be a power of two",
                self.block_size
            ));
        }
        if self.page_size != self.block_size {
            return Err("page_size must equal block_size (pages trade 1:1)".into());
        }
        if self.num_clients == 0 {
            return Err("need at least one client".into());
        }
        if self.num_servers == 0 {
            return Err("need at least one server".into());
        }
        if self.reserved_bytes >= self.client_mem_bytes
            || self.reserved_bytes >= self.client_mem_alt_bytes
        {
            return Err("reserved_bytes exceeds client memory".into());
        }
        if self.daemon_period > self.writeback_delay {
            return Err("daemon_period should not exceed writeback_delay".into());
        }
        if let Some(plan) = &self.faults {
            if !(0.0..1.0).contains(&plan.drop_prob) {
                return Err(format!("drop_prob {} must be in [0, 1)", plan.drop_prob));
            }
            if plan.drop_prob > 0.0 && plan.max_retries == 0 {
                return Err("drop_prob > 0 requires max_retries >= 1".into());
            }
            // Outages of one server must be listed chronologically and
            // must not overlap: the fault scheduler fires them in plan
            // order, so an out-of-order (or overlapping) pair would make
            // behavior depend on event order rather than the plan.
            let mut last_window: Vec<Option<(SimTime, SimTime)>> =
                vec![None; self.num_servers as usize];
            for o in &plan.outages {
                if o.server >= self.num_servers {
                    return Err(format!(
                        "outage targets server {} of {}",
                        o.server, self.num_servers
                    ));
                }
                if o.down_for == SimDuration::ZERO {
                    return Err("outage down_for must be nonzero".into());
                }
                let slot = &mut last_window[o.server as usize];
                if let Some((prev_at, prev_end)) = *slot {
                    if o.at < prev_at {
                        return Err(format!(
                            "server {} outages out of order: {} listed after {}",
                            o.server, o.at, prev_at
                        ));
                    }
                    if o.at < prev_end {
                        return Err(format!("server {} has overlapping outages", o.server));
                    }
                }
                *slot = Some((o.at, o.reboot_at()));
            }
            for p in &plan.partitions {
                if p.heal_after == SimDuration::ZERO {
                    return Err("partition heal_after must be nonzero".into());
                }
                if p.edges.is_empty() {
                    return Err("partition cuts no edges".into());
                }
                for &(c, s) in &p.edges {
                    if c >= self.num_clients {
                        return Err(format!(
                            "partition cuts client {} of {}",
                            c, self.num_clients
                        ));
                    }
                    if s >= self.num_servers {
                        return Err(format!(
                            "partition cuts server {} of {}",
                            s, self.num_servers
                        ));
                    }
                }
            }
            if !plan.partitions.is_empty() && plan.lease_ttl == SimDuration::ZERO {
                return Err("partitions require a nonzero lease_ttl".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        Config::default().validate().expect("default config valid");
        Config::small().validate().expect("small config valid");
    }

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.writeback_delay, SimDuration::from_secs(30));
        assert_eq!(c.daemon_period, SimDuration::from_secs(5));
        assert_eq!(c.vm_preference_window, SimDuration::from_mins(20));
        assert_eq!(c.server_cache_bytes, 128 << 20);
        assert_eq!(c.consistency, ConsistencyPolicy::Sprite);
    }

    #[test]
    fn memory_mix() {
        let c = Config::default();
        assert_eq!(c.client_mem(0), 24 << 20);
        assert_eq!(c.client_mem(1), 24 << 20);
        assert_eq!(c.client_mem(2), 32 << 20);
    }

    #[test]
    fn block_math() {
        let c = Config::default();
        assert_eq!(c.blocks_in(0), 0);
        assert_eq!(c.blocks_in(1), 1);
        assert_eq!(c.blocks_in(4096), 1);
        assert_eq!(c.blocks_in(4097), 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = Config {
            block_size: 1000,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            num_clients: 0,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            reserved_bytes: Config::default().client_mem_bytes,
            ..Config::default()
        };
        assert!(c.validate().is_err());

        let c = Config {
            daemon_period: SimDuration::from_secs(60),
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_plan_validation() {
        let outage = |server, at, down| ServerOutage {
            server,
            at: SimTime::from_secs(at),
            down_for: SimDuration::from_secs(down),
        };
        // A sane plan validates.
        let c = Config {
            faults: Some(FaultPlan {
                outages: vec![outage(0, 100, 60), outage(0, 300, 60), outage(3, 120, 30)],
                drop_prob: 0.01,
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        c.validate().expect("plan valid");

        // Out-of-range server.
        let c = Config {
            faults: Some(FaultPlan {
                outages: vec![outage(4, 100, 60)],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());

        // Overlapping outages of one server.
        let c = Config {
            faults: Some(FaultPlan {
                outages: vec![outage(1, 100, 60), outage(1, 130, 10)],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());

        // Out-of-order outages of one server: non-overlapping, but the
        // later window is listed first. Previously accepted silently.
        let c = Config {
            faults: Some(FaultPlan {
                outages: vec![outage(1, 300, 60), outage(1, 100, 60)],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        let err = c.validate().expect_err("out-of-order outages rejected");
        assert!(err.contains("out of order"), "{err}");

        // Back-to-back windows (reboot exactly at the next crash) are fine.
        let c = Config {
            faults: Some(FaultPlan {
                outages: vec![outage(1, 100, 60), outage(1, 160, 60)],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        c.validate().expect("touching windows valid");

        // Bad drop probability.
        let c = Config {
            faults: Some(FaultPlan {
                drop_prob: 1.5,
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn partition_plan_validation() {
        let part = |at, heal, edges: Vec<(u16, u16)>| Partition {
            at: SimTime::from_secs(at),
            heal_after: SimDuration::from_secs(heal),
            edges,
        };
        // A sane partition plan validates.
        let c = Config {
            faults: Some(FaultPlan {
                partitions: vec![part(100, 300, vec![(0, 0), (5, 1)])],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        c.validate().expect("partition plan valid");

        // Edge endpoints out of range.
        for bad in [vec![(99, 0)], vec![(0, 9)]] {
            let c = Config {
                faults: Some(FaultPlan {
                    partitions: vec![part(100, 300, bad)],
                    ..FaultPlan::default()
                }),
                ..Config::default()
            };
            assert!(c.validate().is_err());
        }

        // Zero-length partitions and empty edge sets are rejected.
        let c = Config {
            faults: Some(FaultPlan {
                partitions: vec![part(100, 0, vec![(0, 0)])],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            faults: Some(FaultPlan {
                partitions: vec![part(100, 300, vec![])],
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());

        // Partitions demand a usable lease TTL.
        let c = Config {
            faults: Some(FaultPlan {
                partitions: vec![part(100, 300, vec![(0, 0)])],
                lease_ttl: SimDuration::ZERO,
                ..FaultPlan::default()
            }),
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn retry_budget_is_monotone_and_bounds_stall() {
        let plan = FaultPlan::default();
        let mut prev = SimDuration::ZERO;
        for k in 0..=plan.max_retries {
            let s = plan.retry_stall(k);
            assert!(s >= prev, "stall not monotone at retry {k}");
            prev = s;
        }
        assert_eq!(plan.retry_stall(plan.max_retries), plan.retry_budget());
        // Asking past the cap clamps to the budget.
        assert_eq!(plan.retry_stall(plan.max_retries + 7), plan.retry_budget());
    }

    #[test]
    fn latency_models() {
        let c = Config::default();
        let fetch = c.net.rpc_time(4096);
        // Section 5.3: a 4-Kbyte page fetch takes about 6 to 7 ms.
        let ms = fetch.as_secs_f64() * 1e3;
        assert!((6.0..7.5).contains(&ms), "block fetch {ms} ms");
        let disk = c.disk.access_time(4096);
        let dms = disk.as_secs_f64() * 1e3;
        assert!((20.0..30.0).contains(&dms), "disk access {dms} ms");
    }
}
