//! Counter vocabulary and per-machine metric state.
//!
//! The measured system kept ~50 kernel counters per machine, sampled for
//! two weeks by a user-level daemon. This module fixes the counter *names*
//! (so the analysis crate and the simulator cannot drift apart) and holds
//! the per-client metric state: a [`CounterSet`] plus the periodic cache
//! size samples behind Table 4.

use sdfs_simkit::{CounterSet, SimTime};

/// Counter names for raw (pre-cache) traffic presented by applications to
/// the client operating system — the measurement point of Table 5.
pub mod raw {
    /// Cacheable file bytes read by applications.
    pub const FILE_READ: &str = "raw.file.read.bytes";
    /// Cacheable file bytes written by applications.
    pub const FILE_WRITE: &str = "raw.file.write.bytes";
    /// Code-page bytes faulted from executables.
    pub const PAGING_CODE_READ: &str = "raw.paging.code.read.bytes";
    /// Initialized-data bytes faulted from executables.
    pub const PAGING_INITDATA_READ: &str = "raw.paging.initdata.read.bytes";
    /// Bytes paged in from backing files (uncacheable on clients).
    pub const PAGING_BACKING_READ: &str = "raw.paging.backing.read.bytes";
    /// Bytes paged out to backing files.
    pub const PAGING_BACKING_WRITE: &str = "raw.paging.backing.write.bytes";
    /// Pass-through reads on write-shared files.
    pub const SHARED_READ: &str = "raw.shared.read.bytes";
    /// Pass-through writes on write-shared files.
    pub const SHARED_WRITE: &str = "raw.shared.write.bytes";
    /// Directory bytes read (directories are not cached on clients).
    pub const DIR_READ: &str = "raw.dir.read.bytes";
}

/// Counter names for client cache effectiveness — the measurement point
/// of Table 6.
pub mod cache {
    /// Block-granularity cache read operations.
    pub const READ_OPS: &str = "cache.read.ops";
    /// Cache read operations that missed.
    pub const READ_MISS_OPS: &str = "cache.read.miss.ops";
    /// Application bytes requested through the cache.
    pub const READ_REQ_BYTES: &str = "cache.read.req.bytes";
    /// Bytes fetched from the server to satisfy read misses.
    pub const READ_MISS_BYTES: &str = "cache.read.miss.bytes";
    /// Block-granularity cache write operations.
    pub const WRITE_OPS: &str = "cache.write.ops";
    /// Application bytes written into the cache.
    pub const WRITE_BYTES: &str = "cache.write.bytes";
    /// Cache writes that required fetching the block first (partial
    /// write of a non-resident block).
    pub const WRITE_FETCH_OPS: &str = "cache.write.fetch.ops";
    /// Bytes written back to the server (whole blocks, so append padding
    /// is included — the paper's write-back ratio can exceed 100%).
    pub const WRITEBACK_BYTES: &str = "cache.writeback.bytes";
    /// Dirty bytes discarded before write-back (deleted/truncated data).
    pub const CANCELLED_BYTES: &str = "cache.cancelled.bytes";
    /// Paging (code + initialized data) cache read operations.
    pub const PAGING_READ_OPS: &str = "cache.paging.read.ops";
    /// Paging cache read operations that missed.
    pub const PAGING_READ_MISS_OPS: &str = "cache.paging.read.miss.ops";
}

/// Migrated-process variants of the Table 6 counters (the paper's
/// "Client Migrated" column).
pub mod mig {
    /// Cache read operations from migrated processes.
    pub const READ_OPS: &str = "mig.cache.read.ops";
    /// Missed cache reads from migrated processes.
    pub const READ_MISS_OPS: &str = "mig.cache.read.miss.ops";
    /// Application bytes requested by migrated processes.
    pub const READ_REQ_BYTES: &str = "mig.cache.read.req.bytes";
    /// Miss bytes fetched for migrated processes.
    pub const READ_MISS_BYTES: &str = "mig.cache.read.miss.bytes";
    /// Write fetches from migrated processes.
    pub const WRITE_FETCH_OPS: &str = "mig.cache.write.fetch.ops";
    /// Cache write operations from migrated processes.
    pub const WRITE_OPS: &str = "mig.cache.write.ops";
    /// Paging reads from migrated processes.
    pub const PAGING_READ_OPS: &str = "mig.cache.paging.read.ops";
    /// Missed paging reads from migrated processes.
    pub const PAGING_READ_MISS_OPS: &str = "mig.cache.paging.read.miss.ops";
}

/// Counter names for traffic actually sent from this client to servers —
/// the measurement point of Table 7.
pub mod srv {
    /// File bytes fetched from servers (read misses + write fetches).
    pub const FILE_READ: &str = "srv.file.read.bytes";
    /// File bytes written back to servers.
    pub const FILE_WRITE: &str = "srv.file.write.bytes";
    /// Paging bytes read from servers (code/init-data misses + backing
    /// page-ins).
    pub const PAGING_READ: &str = "srv.paging.read.bytes";
    /// Paging bytes written to servers (backing page-outs).
    pub const PAGING_WRITE: &str = "srv.paging.write.bytes";
    /// Write-shared pass-through read bytes.
    pub const SHARED_READ: &str = "srv.shared.read.bytes";
    /// Write-shared pass-through write bytes.
    pub const SHARED_WRITE: &str = "srv.shared.write.bytes";
    /// Directory bytes read from servers.
    pub const DIR_READ: &str = "srv.dir.read.bytes";
}

/// Counter names for cache block replacement — Table 8.
pub mod replace {
    /// Blocks replaced to hold another file block.
    pub const FILE_BLOCKS: &str = "replace.file.blocks";
    /// Blocks whose page was handed to the virtual memory system.
    pub const VM_BLOCKS: &str = "replace.vm.blocks";
    /// Sum of (now − last reference) in microseconds for file
    /// replacements.
    pub const FILE_AGE_US: &str = "replace.file.age_us";
    /// Sum of replacement ages for VM handoffs.
    pub const VM_AGE_US: &str = "replace.vm.age_us";
}

/// Counter names for dirty-block cleaning — Table 9.
pub mod clean {
    /// Blocks cleaned by the 30-second delayed-write policy.
    pub const DELAY_BLOCKS: &str = "clean.delay.blocks";
    /// Blocks cleaned because an application called `fsync`.
    pub const FSYNC_BLOCKS: &str = "clean.fsync.blocks";
    /// Blocks cleaned because the server recalled them for another
    /// client's access.
    pub const RECALL_BLOCKS: &str = "clean.recall.blocks";
    /// Blocks cleaned because their page was given to the VM system.
    pub const VM_BLOCKS: &str = "clean.vm.blocks";
    /// Blocks cleaned by LRU eviction while still dirty (rare).
    pub const EVICT_BLOCKS: &str = "clean.evict.blocks";
    /// Age sums (microseconds since last write) for each reason.
    pub const DELAY_AGE_US: &str = "clean.delay.age_us";
    /// Age sum for fsync cleanings.
    pub const FSYNC_AGE_US: &str = "clean.fsync.age_us";
    /// Age sum for recall cleanings.
    pub const RECALL_AGE_US: &str = "clean.recall.age_us";
    /// Age sum for VM handoff cleanings.
    pub const VM_AGE_US: &str = "clean.vm.age_us";
    /// Age sum for dirty LRU evictions.
    pub const EVICT_AGE_US: &str = "clean.evict.age_us";
}

/// Counter names for consistency actions — Table 10 and the polling
/// ablation.
pub mod consist {
    /// File opens (the denominator of Table 10).
    pub const FILE_OPENS: &str = "consist.file.opens";
    /// Opens under concurrent write-sharing.
    pub const CWS_OPENS: &str = "consist.cws.opens";
    /// Opens that required the server to recall dirty data.
    pub const RECALL_OPENS: &str = "consist.recall.opens";
    /// Cached blocks invalidated as stale at open time.
    pub const STALE_BLOCKS: &str = "consist.stale.blocks";
    /// Reads that returned stale data (polling mode only).
    pub const STALE_READ_OPS: &str = "consist.stale.read.ops";
    /// Stale bytes served (polling mode only).
    pub const STALE_READ_BYTES: &str = "consist.stale.read.bytes";
}

/// Counter names for the fault-injection and recovery subsystem — the
/// availability study (server crashes, degraded operation, and the
/// Sprite-style recovery storm).
pub mod fault {
    /// Microseconds of client stall attributed to RPC timeouts/retries.
    pub const STALL_US: &str = "fault.stall.us";
    /// RPCs that stalled because the target server was down.
    pub const STALLED_RPCS: &str = "fault.stalled.rpcs";
    /// Retransmitted messages caused by seeded message drops.
    pub const RETRANS_MSGS: &str = "fault.retrans.msgs";
    /// RPCs abandoned after exhausting the retry budget.
    pub const FAILED_RPCS: &str = "fault.failed.rpcs";
    /// Write-backs the daemon deferred because the file's server was down.
    pub const QUEUED_WRITEBACKS: &str = "fault.queued.writebacks";
    /// Server crash events (counted on the server).
    pub const SRV_CRASHES: &str = "fault.server.crashes";
    /// Server reboot/recovery events (counted on the server).
    pub const SRV_RECOVERIES: &str = "fault.server.recoveries";
    /// Dirty server-cache bytes destroyed by a crash before reaching disk.
    pub const SRV_LOST_BYTES: &str = "fault.server.lost.bytes";
    /// Microseconds of server unavailability (crash to reboot).
    pub const SRV_UNAVAIL_US: &str = "fault.server.unavail.us";
    /// Recovery-storm RPCs (re-registrations + reopens) at reboot.
    pub const STORM_RPCS: &str = "fault.recovery.storm.rpcs";
    /// Client reopen RPCs issued during recovery storms.
    pub const STORM_REOPENS: &str = "fault.recovery.reopen.rpcs";
    /// Client re-registration RPCs issued during recovery storms.
    pub const STORM_REREGISTERS: &str = "fault.recovery.reregister.rpcs";
    /// RPCs that stalled because the client↔server edge was cut by a
    /// network partition (the server itself was up).
    pub const PART_STALLED_RPCS: &str = "fault.partition.stalled.rpcs";
    /// Microseconds of client stall attributed to cut edges.
    pub const PART_STALL_US: &str = "fault.partition.stall.us";
    /// RPCs abandoned on a cut edge after exhausting the retry budget.
    pub const PART_FAILED_RPCS: &str = "fault.partition.failed.rpcs";
    /// Write-backs the daemon deferred because the edge was cut.
    pub const PART_QUEUED_WRITEBACKS: &str = "fault.partition.queued.writebacks";
    /// Edge-cut events (counted on the server end of each cut edge).
    pub const PART_CUT_EDGES: &str = "fault.partition.cut.edges";
    /// Microseconds of cut-edge unavailability, summed over edges
    /// (counted on the server at heal time).
    pub const PART_CUT_US: &str = "fault.partition.cut.us";
    /// Consistency actions (recalls, invalidations, token recalls) the
    /// server could not deliver across a cut edge.
    pub const PART_UNDELIVERED: &str = "fault.partition.undelivered";
    /// Grants the server unilaterally revoked after a client's lease
    /// lapsed during a partition (one per file per client).
    pub const LEASE_EXPIRY_RECALLS: &str = "fault.lease.expiry.recalls";
    /// Dirty client bytes discarded when a lapsed lease revoked the
    /// writer's grant (the partition-era analogue of crash loss).
    pub const LEASE_LOST_BYTES: &str = "fault.lease.lost.bytes";
    /// Microseconds openers spent waiting for an unreachable holder's
    /// lease to lapse before the server could revoke and proceed.
    pub const LEASE_WAIT_US: &str = "fault.lease.wait.us";
    /// Total RPCs in heal storms (lease renews + reasserts under the
    /// lease protocol; reregisters + reopens under the conservative
    /// baseline). Counted on the server.
    pub const HEAL_STORM_RPCS: &str = "fault.heal.storm.rpcs";
    /// Lease-renew RPCs issued when a partition healed.
    pub const HEAL_RENEWALS: &str = "fault.heal.renew.rpcs";
    /// Reassert RPCs issued at heal for revoked grants.
    pub const HEAL_REASSERTS: &str = "fault.heal.reassert.rpcs";
    /// Conservative-baseline reregister RPCs issued at heal.
    pub const HEAL_REREGISTERS: &str = "fault.heal.reregister.rpcs";
    /// Conservative-baseline reopen RPCs issued at heal.
    pub const HEAL_REOPENS: &str = "fault.heal.reopen.rpcs";
    /// Dirty server-cache bytes the battery-backed NVRAM buffer carried
    /// across a crash (they reach disk at reboot instead of vanishing).
    pub const NVRAM_SAVED_BYTES: &str = "fault.nvram.saved.bytes";
}

/// Counter names for client restarts (crash vs. orderly reboot).
pub mod restart {
    /// Dirty client-cache bytes destroyed by a client crash.
    pub const CRASH_LOST_BYTES: &str = "crash.lost.bytes";
    /// Client crash events.
    pub const CRASH_COUNT: &str = "crash.count";
    /// Orderly client reboots (dirty data flushed, then cold cache).
    pub const REBOOT_COUNT: &str = "reboot.count";
}

/// Self-measurement bookkeeping names used by the sdfs-obs layer.
///
/// Like the sanitizer, obs state is kept out of the per-machine
/// [`sdfs_simkit::CounterSet`]s so an observed run stays byte-identical
/// to a plain one; these names key the obs report's rendered summary and
/// JSON export instead.
pub mod obs {
    /// Structured events recorded into the ring (including overwritten).
    pub const EVENTS_RECORDED: &str = "obs.events.recorded";
    /// Events lost to ring overwrite.
    pub const EVENTS_DROPPED: &str = "obs.events.dropped";
    /// Closed file-open spans (open → close of one handle).
    pub const SPAN_FILE_OPEN: &str = "obs.span.file.open";
    /// Closed RPC-stall spans (client blocked on a down server).
    pub const SPAN_STALL: &str = "obs.span.stall";
    /// Closed server-outage spans (crash → recovery).
    pub const SPAN_SERVER_OUTAGE: &str = "obs.span.server.outage";
    /// Closed recovery-storm spans (reregister/reopen burst).
    pub const SPAN_RECOVERY_STORM: &str = "obs.span.recovery.storm";
    /// RPC latency samples recorded across all kinds.
    pub const RPC_SAMPLES: &str = "obs.rpc.latency.samples";
    /// Retry/backoff wait samples.
    pub const RETRY_SAMPLES: &str = "obs.retry.wait.samples";
    /// Write-back queue dwell samples.
    pub const DWELL_SAMPLES: &str = "obs.writeback.dwell.samples";
    /// Recovery-storm reopen latency samples.
    pub const REOPEN_SAMPLES: &str = "obs.reopen.latency.samples";
    /// RPCs that exhausted their retry budget, totalled across kinds
    /// (the per-kind breakdown lives in the obs report).
    pub const EXHAUSTED_RPCS: &str = "obs.retry.exhausted.rpcs";
}

/// The sanitizer section: SpriteSan's verdict for one cluster run.
///
/// Kept out of [`sdfs_simkit::CounterSet`] on purpose — sanitizer
/// bookkeeping must never perturb the counters behind the published
/// tables, so a sanitized run stays byte-identical to a plain one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerStats {
    /// Checks performed (hooks fired), for "did it actually run".
    pub ops_checked: u64,
    /// Reads that observed stale data under a strong policy.
    pub stale_reads: u64,
    /// Blocks found dirty on two clients at once.
    pub multi_dirty: u64,
    /// Blocks still dirty past the delay-plus-scan write-back window.
    pub writeback_window: u64,
    /// LRU / dirty-index / page-grant conservation failures.
    pub accounting: u64,
    /// Human-readable description of the first violation seen.
    pub first_violation: Option<String>,
}

impl SanitizerStats {
    /// Total violations across all invariants.
    pub fn violations(&self) -> u64 {
        self.stale_reads + self.multi_dirty + self.writeback_window + self.accounting
    }

    /// `true` when every check passed.
    pub fn is_clean(&self) -> bool {
        self.violations() == 0
    }

    /// Folds another run's verdict into this one (campaigns run many
    /// clusters).
    pub fn merge(&mut self, other: &SanitizerStats) {
        self.ops_checked += other.ops_checked;
        self.stale_reads += other.stale_reads;
        self.multi_dirty += other.multi_dirty;
        self.writeback_window += other.writeback_window;
        self.accounting += other.accounting;
        if self.first_violation.is_none() {
            self.first_violation = other.first_violation.clone();
        }
    }

    /// One-line summary for reports.
    pub fn render(&self) -> String {
        if self.is_clean() {
            format!("sanitizer: clean ({} checks)", self.ops_checked)
        } else {
            format!(
                "sanitizer: {} violation(s) in {} checks \
                 (stale reads {}, multi-dirty {}, write-back window {}, accounting {}){}",
                self.violations(),
                self.ops_checked,
                self.stale_reads,
                self.multi_dirty,
                self.writeback_window,
                self.accounting,
                self.first_violation
                    .as_deref()
                    .map(|d| format!("\n  first: {d}"))
                    .unwrap_or_default(),
            )
        }
    }
}

/// One periodic observation of a client's cache size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeSample {
    /// When the sample was taken.
    pub time: SimTime,
    /// File cache size in bytes.
    pub bytes: u64,
    /// Whether the machine saw user activity during the preceding sample
    /// period (Table 4 screens idle intervals out).
    pub active: bool,
}

/// Metric state for one machine.
#[derive(Debug, Default)]
pub struct MachineMetrics {
    /// The kernel counters.
    pub counters: CounterSet,
    /// Periodic cache-size samples.
    pub samples: Vec<SizeSample>,
}

impl MachineMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        MachineMetrics::default()
    }

    /// Records a cache-size sample.
    pub fn sample(&mut self, time: SimTime, bytes: u64, active: bool) {
        self.samples.push(SizeSample {
            time,
            bytes,
            active,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling() {
        let mut m = MachineMetrics::new();
        m.sample(SimTime::from_secs(60), 7 << 20, true);
        m.sample(SimTime::from_secs(120), 8 << 20, false);
        assert_eq!(m.samples.len(), 2);
        assert_eq!(m.samples[0].bytes, 7 << 20);
        assert!(!m.samples[1].active);
    }

    /// Every name constant this module exports, plus the per-kind RPC
    /// counter keys derived in `rpc.rs` — the full key vocabulary that
    /// can ever land in a machine's flat sorted counter vec.
    fn all_counter_names() -> Vec<&'static str> {
        let mut names = vec![
            raw::FILE_READ,
            raw::FILE_WRITE,
            raw::PAGING_CODE_READ,
            raw::PAGING_INITDATA_READ,
            raw::PAGING_BACKING_READ,
            raw::PAGING_BACKING_WRITE,
            raw::SHARED_READ,
            raw::SHARED_WRITE,
            raw::DIR_READ,
            cache::READ_OPS,
            cache::READ_MISS_OPS,
            cache::READ_REQ_BYTES,
            cache::READ_MISS_BYTES,
            cache::WRITE_OPS,
            cache::WRITE_BYTES,
            cache::WRITE_FETCH_OPS,
            cache::WRITEBACK_BYTES,
            cache::CANCELLED_BYTES,
            cache::PAGING_READ_OPS,
            cache::PAGING_READ_MISS_OPS,
            mig::READ_OPS,
            mig::READ_MISS_OPS,
            mig::READ_REQ_BYTES,
            mig::READ_MISS_BYTES,
            mig::WRITE_FETCH_OPS,
            mig::WRITE_OPS,
            mig::PAGING_READ_OPS,
            mig::PAGING_READ_MISS_OPS,
            srv::FILE_READ,
            srv::FILE_WRITE,
            srv::PAGING_READ,
            srv::PAGING_WRITE,
            srv::SHARED_READ,
            srv::SHARED_WRITE,
            srv::DIR_READ,
            replace::FILE_BLOCKS,
            replace::VM_BLOCKS,
            replace::FILE_AGE_US,
            replace::VM_AGE_US,
            clean::DELAY_BLOCKS,
            clean::FSYNC_BLOCKS,
            clean::RECALL_BLOCKS,
            clean::VM_BLOCKS,
            clean::EVICT_BLOCKS,
            clean::DELAY_AGE_US,
            clean::FSYNC_AGE_US,
            clean::RECALL_AGE_US,
            clean::VM_AGE_US,
            clean::EVICT_AGE_US,
            consist::FILE_OPENS,
            consist::CWS_OPENS,
            consist::RECALL_OPENS,
            consist::STALE_BLOCKS,
            consist::STALE_READ_OPS,
            consist::STALE_READ_BYTES,
            fault::STALL_US,
            fault::STALLED_RPCS,
            fault::RETRANS_MSGS,
            fault::FAILED_RPCS,
            fault::QUEUED_WRITEBACKS,
            fault::SRV_CRASHES,
            fault::SRV_RECOVERIES,
            fault::SRV_LOST_BYTES,
            fault::SRV_UNAVAIL_US,
            fault::STORM_RPCS,
            fault::STORM_REOPENS,
            fault::STORM_REREGISTERS,
            fault::PART_STALLED_RPCS,
            fault::PART_STALL_US,
            fault::PART_FAILED_RPCS,
            fault::PART_QUEUED_WRITEBACKS,
            fault::PART_CUT_EDGES,
            fault::PART_CUT_US,
            fault::PART_UNDELIVERED,
            fault::LEASE_EXPIRY_RECALLS,
            fault::LEASE_LOST_BYTES,
            fault::LEASE_WAIT_US,
            fault::HEAL_STORM_RPCS,
            fault::HEAL_RENEWALS,
            fault::HEAL_REASSERTS,
            fault::HEAL_REREGISTERS,
            fault::HEAL_REOPENS,
            fault::NVRAM_SAVED_BYTES,
            restart::CRASH_LOST_BYTES,
            restart::CRASH_COUNT,
            restart::REBOOT_COUNT,
            obs::EVENTS_RECORDED,
            obs::EVENTS_DROPPED,
            obs::SPAN_FILE_OPEN,
            obs::SPAN_STALL,
            obs::SPAN_SERVER_OUTAGE,
            obs::SPAN_RECOVERY_STORM,
            obs::RPC_SAMPLES,
            obs::RETRY_SAMPLES,
            obs::DWELL_SAMPLES,
            obs::REOPEN_SAMPLES,
            obs::EXHAUSTED_RPCS,
        ];
        for k in crate::rpc::RpcKind::ALL {
            names.push(k.msgs_key());
            names.push(k.bytes_key());
        }
        names
    }

    /// The counter-name grammar: dot-separated lowercase segments, with
    /// underscores allowed inside a segment (`clean.delay.age_us`,
    /// `rpc.read_block.msgs`). Formally `[a-z0-9]+([._][a-z0-9]+)*` —
    /// no empty segments, no leading/trailing/doubled separators, no
    /// uppercase, whitespace, or other punctuation.
    fn well_formed(name: &str) -> bool {
        let mut after_sep = true;
        for c in name.chars() {
            match c {
                'a'..='z' | '0'..='9' => after_sep = false,
                '.' | '_' => {
                    if after_sep {
                        return false;
                    }
                    after_sep = true;
                }
                _ => return false,
            }
        }
        !after_sep && !name.is_empty()
    }

    #[test]
    fn counter_names_are_unique() {
        use std::collections::HashSet;
        let names = all_counter_names();
        let mut set: HashSet<&str> = HashSet::new();
        for n in &names {
            assert!(set.insert(n), "duplicate counter name {n:?}");
        }
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn counter_names_follow_grammar() {
        for n in all_counter_names() {
            assert!(well_formed(n), "counter name {n:?} breaks the grammar");
        }
        // The checker itself rejects the shapes the grammar forbids.
        for bad in [
            "", ".", "a.", ".a", "a..b", "a._b", "A.b", "a b", "a-b", "a.B", "_a", "a_",
        ] {
            assert!(!well_formed(bad), "{bad:?} should be rejected");
        }
        for good in ["a", "a.b", "clean.delay.age_us", "rpc.read_block.msgs"] {
            assert!(well_formed(good), "{good:?} should be accepted");
        }
    }
}
