//! File-server state: server caches and per-file consistency bookkeeping.
//!
//! Servers cache both naming information and file data (clients cache
//! only file data); naming operations — opens, closes, deletes — always
//! pass through to the server, which is what makes system-wide tracing
//! from the servers possible. The server also owns the consistency
//! state: who has each file open and in what mode, who wrote it last,
//! whether client caching is disabled, and (in token mode) who holds
//! which tokens.

use sdfs_simkit::{FastMap, FastSet};

use sdfs_simkit::{CounterSet, SimTime};
use sdfs_trace::{ClientId, FileId, Handle, OpenMode, ServerId};

use crate::cache::{BlockCache, BlockKey};

/// One client's open of a file, as the server sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenEntry {
    /// The opening client.
    pub client: ClientId,
    /// The open handle.
    pub handle: Handle,
    /// Declared mode.
    pub mode: OpenMode,
}

/// Token state for one file (token consistency mode only).
#[derive(Debug, Clone, Default)]
pub struct TokenState {
    /// Clients holding read tokens.
    pub readers: FastSet<ClientId>,
    /// The client holding the write token, if any.
    pub writer: Option<ClientId>,
}

/// Epoch-guarded summary of a *calm* file: a single client using the
/// file with no conflicting state, which lets the cluster's control
/// plane admit an open or close with an O(1) decision instead of the
/// full consistency walk (DESIGN.md §13).
///
/// The summary is trusted only while `live` is set **and** `epoch`
/// matches the cluster's current conflict epoch. Every slow-path walk
/// recomputes it from the actual state, and cluster-wide disruptions
/// (cache-mode flips, client restarts, server crashes and recoveries,
/// deletes, truncates) bump the epoch, killing every summary at once.
#[derive(Debug, Clone, Copy)]
pub struct CalmState {
    /// Whether the summary is meaningful at all (`false` forces the
    /// slow path, which recomputes it).
    pub live: bool,
    /// Conflict epoch at establishment.
    pub epoch: u64,
    /// The sole client using the file.
    pub client: ClientId,
    /// Version stamp the client's cache tracks (Sprite policies):
    /// equals both the file's current version and the client's
    /// `seen_version` entry while the summary holds.
    pub seen_version: u64,
    /// The client holds the write token (token policy).
    pub holds_write: bool,
    /// The client holds a read token (token policy).
    pub holds_read: bool,
    /// The client's most recent attribute poll (polling policy).
    pub last_validate: SimTime,
}

impl Default for CalmState {
    fn default() -> Self {
        CalmState {
            live: false,
            epoch: 0,
            client: ClientId(0),
            seen_version: 0,
            holds_write: false,
            holds_read: false,
            last_validate: SimTime::ZERO,
        }
    }
}

/// Per-file consistency state kept by the owning server.
#[derive(Debug, Clone, Default)]
pub struct SrvFileState {
    /// Current opens of this file.
    pub opens: Vec<OpenEntry>,
    /// Whether clients may cache this file (false during concurrent
    /// write-sharing under the Sprite policies).
    pub uncacheable: bool,
    /// The client whose cache may hold the newest data.
    pub last_writer: Option<ClientId>,
    /// Token holders (token mode).
    pub tokens: TokenState,
    /// Fast-path summary. Bookkeeping only: no output-visible code path
    /// reads it, so a stale (dead) summary can never change a byte.
    pub calm: CalmState,
}

impl SrvFileState {
    /// Number of distinct clients with the file open. The opens list is
    /// tiny (a handful at most), so a quadratic scan beats allocating a
    /// scratch vector — this runs on every open and close.
    pub fn distinct_clients(&self) -> usize {
        let mut n = 0;
        for (i, o) in self.opens.iter().enumerate() {
            if !self.opens[..i].iter().any(|p| p.client == o.client) {
                n += 1;
            }
        }
        n
    }

    /// Whether any open is a writing open.
    pub fn any_writer(&self) -> bool {
        self.opens.iter().any(|o| o.mode.writes())
    }

    /// The concurrent write-sharing condition of Section 5.5: open on
    /// multiple machines with at least one writer.
    pub fn write_shared(&self) -> bool {
        self.distinct_clients() >= 2 && self.any_writer()
    }

    /// Removes the open identified by `handle`, returning it.
    pub fn remove_open(&mut self, handle: Handle) -> Option<OpenEntry> {
        let idx = self.opens.iter().position(|o| o.handle == handle)?;
        Some(self.opens.remove(idx))
    }

    /// Whether this state carries no information and can be dropped.
    pub fn is_quiescent(&self) -> bool {
        self.opens.is_empty()
            && !self.uncacheable
            && self.last_writer.is_none()
            && self.tokens.readers.is_empty()
            && self.tokens.writer.is_none()
    }
}

/// One file server.
#[derive(Debug)]
pub struct Server {
    /// The server's identity.
    pub id: ServerId,
    /// The server's block cache.
    pub cache: BlockCache,
    /// Cache capacity in blocks.
    pub capacity_blocks: u64,
    /// Per-file consistency state (only for files with activity).
    pub files: FastMap<FileId, SrvFileState>,
    /// Server-side counters (disk traffic, RPCs served).
    pub counters: CounterSet,
    /// Scratch buffer reused by the write-back daemon's file scan.
    scratch_files: Vec<FileId>,
    /// Scratch buffer reused for per-file block index lists.
    scratch_blocks: Vec<u64>,
    /// When set, every block written to disk is appended to
    /// `disk_flush_log` (SpriteSan uses this to track what survives a
    /// crash). Off by default so plain runs pay nothing.
    log_disk_flushes: bool,
    /// Blocks flushed to disk since the last [`Server::take_disk_flush_log`].
    disk_flush_log: Vec<BlockKey>,
}

impl Server {
    /// Creates a server with the given cache capacity.
    pub fn new(id: ServerId, capacity_bytes: u64, block_size: u64) -> Self {
        Server {
            id,
            cache: BlockCache::new(),
            capacity_blocks: capacity_bytes / block_size,
            files: FastMap::default(),
            counters: CounterSet::new(),
            scratch_files: Vec::new(),
            scratch_blocks: Vec::new(),
            log_disk_flushes: false,
            disk_flush_log: Vec::new(),
        }
    }

    /// Enables or disables the disk-flush event log (sanitized runs only).
    pub fn set_disk_flush_logging(&mut self, on: bool) {
        self.log_disk_flushes = on;
        if !on {
            self.disk_flush_log.clear();
        }
    }

    /// Drains the disk-flush log into `into` (appending), leaving the log
    /// empty. No-op unless logging is enabled.
    pub fn take_disk_flush_log(&mut self, into: &mut Vec<BlockKey>) {
        into.append(&mut self.disk_flush_log);
    }

    /// A power failure: the volatile block cache and all per-client
    /// consistency state vanish; only what reached disk survives. Dirty
    /// cached blocks are destroyed — each is appended to `lost` with its
    /// accumulated application bytes — and the total lost bytes are
    /// returned. Counters survive (they model the tracing daemon's
    /// stable log, and wiping them would break campaign accounting).
    ///
    /// `nvram_bytes` models a battery-backed write buffer
    /// ([`crate::Config::server_nvram_bytes`]): the newest
    /// `nvram_bytes` of dirty data survive the crash — appended to
    /// `saved` instead of `lost` — and replay to disk at reboot, so
    /// they are as durable as a disk flush. With a buffer at least as
    /// large as the dirty working set, crash loss drops to zero while
    /// the delayed-write traffic savings are untouched (the buffer only
    /// matters at crash time).
    pub fn crash(
        &mut self,
        lost: &mut Vec<(BlockKey, u64)>,
        nvram_bytes: u64,
        saved: &mut Vec<(BlockKey, u64)>,
    ) -> u64 {
        let mut files = std::mem::take(&mut self.scratch_files);
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        self.cache.files_with_dirty_before_into(SimTime::MAX, &mut files);
        let first_lost = lost.len();
        for &file in &files {
            self.cache.dirty_blocks_of_into(file, &mut blocks);
            for &index in &blocks {
                let key = BlockKey { file, index };
                let bytes = self
                    .cache
                    .get(key)
                    .map(|e| e.dirty_app_bytes)
                    .unwrap_or(0);
                lost.push((key, bytes));
            }
        }
        // The scan runs oldest-dirty first, so the buffer's contents —
        // the newest writes — sit at the tail: move entries from the
        // tail to `saved` until the buffer budget runs out.
        let mut budget = nvram_bytes;
        while nvram_bytes > 0 && lost.len() > first_lost {
            let &(_, bytes) = lost.last().expect("tail entry");
            if bytes > budget {
                break;
            }
            budget -= bytes;
            saved.push(lost.pop().expect("tail entry"));
        }
        let lost_bytes = lost[first_lost..].iter().map(|&(_, b)| b).sum();
        files.clear();
        blocks.clear();
        self.scratch_files = files;
        self.scratch_blocks = blocks;
        self.cache = BlockCache::new();
        self.files.clear();
        self.disk_flush_log.clear();
        lost_bytes
    }

    /// Mutable access to the consistency state for `file`, creating it on
    /// first touch.
    pub fn file_state(&mut self, file: FileId) -> &mut SrvFileState {
        crate::racecheck::guard(crate::racecheck::Resource::SrvFileState);
        self.files.entry(file).or_default()
    }

    /// Drops quiescent file state to keep the map small.
    pub fn gc_file(&mut self, file: FileId) {
        if self
            .files
            .get(&file)
            .is_some_and(SrvFileState::is_quiescent)
        {
            self.files.remove(&file);
        }
    }

    /// Serves a block read from a client: hit in the server cache or a
    /// disk read. `block_bytes` is the payload size. Returns `true` on a
    /// server-cache hit — the observability layer uses this to decide
    /// whether the RPC's modeled latency includes a disk access.
    pub fn serve_read(&mut self, key: BlockKey, block_bytes: u64, now: SimTime) -> bool {
        self.counters.add("server.read.bytes", block_bytes);
        if self.cache.touch(key, now) {
            self.counters.bump("server.cache.read.hit");
            true
        } else {
            self.counters.bump("server.cache.read.miss");
            self.counters.add("server.disk.read.bytes", block_bytes);
            self.insert_block(key, now);
            false
        }
    }

    /// Accepts a block write from a client into the server cache (the
    /// server itself uses a 30-second delayed write to disk).
    pub fn accept_write(&mut self, key: BlockKey, block_bytes: u64, now: SimTime) {
        self.counters.add("server.write.bytes", block_bytes);
        self.insert_block(key, now);
        self.cache.mark_dirty(key, now, block_bytes);
    }

    /// Inserts a block, evicting LRU blocks past capacity (dirty
    /// evictions are written to disk first).
    fn insert_block(&mut self, key: BlockKey, now: SimTime) {
        self.cache.insert(key, now);
        while self.cache.len() as u64 > self.capacity_blocks {
            if let Some((evicted, entry)) = self.cache.pop_lru() {
                if entry.dirty {
                    self.counters.add("server.disk.write.bytes", 4096);
                    if self.log_disk_flushes {
                        self.disk_flush_log.push(evicted);
                    }
                }
                self.counters.bump("server.cache.evictions");
            } else {
                break;
            }
        }
    }

    /// The server's delayed-write daemon: flush blocks dirty since
    /// `cutoff` to disk.
    pub fn flush_dirty_before(&mut self, cutoff: SimTime, block_size: u64) {
        let mut files = std::mem::take(&mut self.scratch_files);
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        self.cache.files_with_dirty_before_into(cutoff, &mut files);
        for &file in &files {
            self.cache.dirty_blocks_of_into(file, &mut blocks);
            for &index in &blocks {
                let key = BlockKey { file, index };
                if self.cache.clean(key).is_some() {
                    self.counters.add("server.disk.write.bytes", block_size);
                    if self.log_disk_flushes {
                        self.disk_flush_log.push(key);
                    }
                }
            }
        }
        self.scratch_files = files;
        self.scratch_blocks = blocks;
    }

    /// Drops all cached blocks of `file` (deletion or truncation).
    pub fn drop_file_blocks(&mut self, file: FileId) {
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        self.cache.blocks_of_into(file, &mut blocks);
        for &index in &blocks {
            self.cache.remove(BlockKey { file, index });
        }
        self.scratch_blocks = blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, index: u64) -> BlockKey {
        BlockKey {
            file: FileId(file),
            index,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn write_sharing_condition() {
        let mut s = SrvFileState::default();
        s.opens.push(OpenEntry {
            client: ClientId(1),
            handle: Handle(1),
            mode: OpenMode::Read,
        });
        assert!(!s.write_shared());
        s.opens.push(OpenEntry {
            client: ClientId(1),
            handle: Handle(2),
            mode: OpenMode::Write,
        });
        // Same machine twice: not *concurrent* write-sharing.
        assert!(!s.write_shared());
        s.opens.push(OpenEntry {
            client: ClientId(2),
            handle: Handle(3),
            mode: OpenMode::Read,
        });
        assert!(s.write_shared());
        s.remove_open(Handle(2));
        assert!(!s.write_shared());
    }

    #[test]
    fn quiescence_and_gc() {
        let mut srv = Server::new(ServerId(0), 1 << 20, 4096);
        let st = srv.file_state(FileId(1));
        st.opens.push(OpenEntry {
            client: ClientId(0),
            handle: Handle(1),
            mode: OpenMode::Read,
        });
        srv.gc_file(FileId(1));
        assert!(srv.files.contains_key(&FileId(1)), "still open");
        srv.file_state(FileId(1)).remove_open(Handle(1));
        srv.gc_file(FileId(1));
        assert!(!srv.files.contains_key(&FileId(1)), "gc after quiesce");
    }

    #[test]
    fn server_cache_hit_miss() {
        let mut srv = Server::new(ServerId(0), 8 * 4096, 4096);
        srv.serve_read(key(1, 0), 4096, t(1));
        assert_eq!(srv.counters.get("server.cache.read.miss"), 1);
        assert_eq!(srv.counters.get("server.disk.read.bytes"), 4096);
        srv.serve_read(key(1, 0), 4096, t(2));
        assert_eq!(srv.counters.get("server.cache.read.hit"), 1);
    }

    #[test]
    fn capacity_eviction_writes_dirty_to_disk() {
        let mut srv = Server::new(ServerId(0), 2 * 4096, 4096);
        srv.accept_write(key(1, 0), 4096, t(1));
        srv.accept_write(key(1, 1), 4096, t(2));
        assert_eq!(srv.cache.len(), 2);
        srv.serve_read(key(2, 0), 4096, t(3));
        assert_eq!(srv.cache.len(), 2, "capacity enforced");
        assert_eq!(srv.counters.get("server.cache.evictions"), 1);
        // The evicted block (1,0) was dirty → disk write.
        assert_eq!(srv.counters.get("server.disk.write.bytes"), 4096);
    }

    #[test]
    fn daemon_flush() {
        let mut srv = Server::new(ServerId(0), 1 << 20, 4096);
        srv.accept_write(key(1, 0), 4096, t(0));
        srv.accept_write(key(2, 0), 4096, t(50));
        srv.flush_dirty_before(t(30), 4096);
        assert_eq!(srv.counters.get("server.disk.write.bytes"), 4096);
        assert_eq!(srv.cache.dirty_len(), 1);
    }

    #[test]
    fn crash_destroys_dirty_blocks_but_not_disk() {
        let mut srv = Server::new(ServerId(0), 1 << 20, 4096);
        srv.set_disk_flush_logging(true);
        srv.accept_write(key(1, 0), 4096, t(0));
        srv.accept_write(key(2, 0), 4096, t(50));
        // The daemon flushes the old block to disk; the young one stays
        // dirty in the volatile cache.
        srv.flush_dirty_before(t(30), 4096);
        let mut flushed = Vec::new();
        srv.take_disk_flush_log(&mut flushed);
        assert_eq!(flushed, vec![key(1, 0)]);
        srv.file_state(FileId(2)).last_writer = Some(ClientId(3));

        let mut lost = Vec::new();
        let mut saved = Vec::new();
        let lost_bytes = srv.crash(&mut lost, 0, &mut saved);
        assert_eq!(lost, vec![(key(2, 0), 4096)], "unflushed block destroyed");
        assert_eq!(lost_bytes, 4096);
        assert!(saved.is_empty(), "no NVRAM, nothing saved");
        assert!(srv.cache.is_empty(), "volatile cache gone");
        assert!(srv.files.is_empty(), "consistency state gone");
        // A second crash right after loses nothing.
        let mut lost2 = Vec::new();
        assert_eq!(srv.crash(&mut lost2, 0, &mut saved), 0);
        assert!(lost2.is_empty());
    }

    #[test]
    fn nvram_buffer_saves_newest_dirty_data() {
        let mut srv = Server::new(ServerId(0), 1 << 20, 4096);
        srv.accept_write(key(1, 0), 4096, t(0));
        srv.accept_write(key(2, 0), 4096, t(50));
        srv.accept_write(key(3, 0), 4096, t(90));

        // A one-block buffer carries the newest write across the crash.
        let mut lost = Vec::new();
        let mut saved = Vec::new();
        let lost_bytes = srv.crash(&mut lost, 4096, &mut saved);
        assert_eq!(lost_bytes, 8192);
        assert_eq!(lost.len(), 2);
        assert_eq!(saved, vec![(key(3, 0), 4096)], "newest dirty block saved");

        // A buffer bigger than the dirty set drops loss to zero.
        srv.accept_write(key(1, 0), 4096, t(200));
        srv.accept_write(key(2, 0), 4096, t(210));
        let mut lost = Vec::new();
        let mut saved = Vec::new();
        let lost_bytes = srv.crash(&mut lost, 1 << 20, &mut saved);
        assert_eq!(lost_bytes, 0);
        assert!(lost.is_empty());
        assert_eq!(saved.len(), 2);
    }

    #[test]
    fn drop_file_blocks() {
        let mut srv = Server::new(ServerId(0), 1 << 20, 4096);
        srv.accept_write(key(1, 0), 4096, t(0));
        srv.accept_write(key(1, 1), 4096, t(0));
        srv.accept_write(key(2, 0), 4096, t(0));
        srv.drop_file_blocks(FileId(1));
        assert_eq!(srv.cache.len(), 1);
        assert_eq!(srv.cache.dirty_len(), 1);
    }
}
