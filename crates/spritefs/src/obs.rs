//! sdfs-obs: the cluster's self-measurement layer.
//!
//! The paper's contribution is instrumentation — kernel tracing plus
//! ~50 per-machine counters — and this module turns the same
//! methodology back on the simulator itself. When [`crate::Config`]
//! `observe` is set, the cluster carries an [`Obs`] collector that
//! records:
//!
//! * **structured events** (RPC issue/retry/complete, cache
//!   hit/miss/evict/write-back, consistency recall/invalidate,
//!   crash/reregister/reopen) into a pre-allocated
//!   [`sdfs_simkit::obs::EventRing`] — no allocation on the hot path;
//! * **integer log-bucketed latency histograms**
//!   ([`sdfs_simkit::LogHistogram`]) for per-[`RpcKind`] latency,
//!   retry/backoff waits, write-back queue dwell, and recovery-storm
//!   reopen latency, with exact deterministic merge;
//! * **span aggregates** (file-open, RPC stall, server outage,
//!   recovery storm) as count/total/max triples.
//!
//! Every stamp is [`SimTime`] — simulated microseconds, never the wall
//! clock — so the determinism lint stays clean and an observed run is
//! replayable bit-for-bit. With `observe` off the collector is never
//! allocated and stdout is byte-identical to an unobserved build.

use sdfs_simkit::obs::{EventRing, ObsEvent, SpanStat};
use sdfs_simkit::{LogHistogram, SimDuration, SimTime};

use crate::metrics;
use crate::rpc::RpcKind;

/// Event-ring capacity: enough to keep the full tail of a recovery
/// storm while bounding memory; older events are overwritten and
/// counted as dropped.
pub const RING_CAPACITY: usize = 65_536;

/// The structured-event vocabulary of the self-measurement layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEventKind {
    /// An RPC left a client (argument: payload bytes).
    RpcIssue,
    /// An RPC was retransmitted after a drop or stall (argument: retry
    /// ordinal).
    RpcRetry,
    /// An RPC finished (argument: modeled latency in microseconds).
    RpcComplete,
    /// A client cache read hit (argument: file id).
    CacheHit,
    /// A client cache read miss (argument: file id).
    CacheMiss,
    /// A client cache block was evicted (argument: file id).
    CacheEvict,
    /// A dirty block was written back (argument: dwell in microseconds).
    WriteBack,
    /// A write-back was queued because the server was down (argument:
    /// file id).
    QueuedWriteBack,
    /// The server recalled dirty data from the last writer (argument:
    /// file id).
    Recall,
    /// The server invalidated a client's cached copy (argument: file id).
    Invalidate,
    /// A server crashed (argument: dirty bytes lost).
    ServerCrash,
    /// A server finished recovering (argument: downtime in microseconds).
    ServerRecover,
    /// A client re-registered with a rebooted server.
    Reregister,
    /// A client reopened a handle at a rebooted server (argument:
    /// modeled reopen latency in microseconds).
    Reopen,
    /// A partition cut a client↔server edge (argument: heal time in
    /// microseconds).
    PartitionCut,
    /// A cut edge healed (argument: cut duration in microseconds).
    PartitionHeal,
    /// The server revoked a grant after the holder's lease lapsed
    /// behind a partition (argument: file id).
    LeaseRevoke,
    /// A client reasserted a revoked grant across a healed edge
    /// (argument: file id).
    Reassert,
}

impl ObsEventKind {
    /// Every event kind, exactly once, in code order.
    pub const ALL: [ObsEventKind; 18] = [
        ObsEventKind::RpcIssue,
        ObsEventKind::RpcRetry,
        ObsEventKind::RpcComplete,
        ObsEventKind::CacheHit,
        ObsEventKind::CacheMiss,
        ObsEventKind::CacheEvict,
        ObsEventKind::WriteBack,
        ObsEventKind::QueuedWriteBack,
        ObsEventKind::Recall,
        ObsEventKind::Invalidate,
        ObsEventKind::ServerCrash,
        ObsEventKind::ServerRecover,
        ObsEventKind::Reregister,
        ObsEventKind::Reopen,
        ObsEventKind::PartitionCut,
        ObsEventKind::PartitionHeal,
        ObsEventKind::LeaseRevoke,
        ObsEventKind::Reassert,
    ];

    /// The `u8` code stored in [`ObsEvent::kind`].
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Dotted lowercase name, following the counter-name grammar.
    pub fn name(self) -> &'static str {
        match self {
            ObsEventKind::RpcIssue => "rpc.issue",
            ObsEventKind::RpcRetry => "rpc.retry",
            ObsEventKind::RpcComplete => "rpc.complete",
            ObsEventKind::CacheHit => "cache.hit",
            ObsEventKind::CacheMiss => "cache.miss",
            ObsEventKind::CacheEvict => "cache.evict",
            ObsEventKind::WriteBack => "cache.writeback",
            ObsEventKind::QueuedWriteBack => "cache.writeback.queued",
            ObsEventKind::Recall => "consist.recall",
            ObsEventKind::Invalidate => "consist.invalidate",
            ObsEventKind::ServerCrash => "fault.server.crash",
            ObsEventKind::ServerRecover => "fault.server.recover",
            ObsEventKind::Reregister => "recovery.reregister",
            ObsEventKind::Reopen => "recovery.reopen",
            ObsEventKind::PartitionCut => "fault.partition.cut",
            ObsEventKind::PartitionHeal => "fault.partition.heal",
            ObsEventKind::LeaseRevoke => "fault.lease.revoke",
            ObsEventKind::Reassert => "recovery.reassert",
        }
    }
}

/// The span vocabulary: durations the layer aggregates rather than
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Open → close of one file handle.
    FileOpen,
    /// A client blocked on a down server (timeout + backoff retries).
    Stall,
    /// Server crash → end of recovery.
    ServerOutage,
    /// The reregister/reopen burst after a server reboot.
    RecoveryStorm,
}

impl SpanKind {
    /// Every span kind, exactly once, in code order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::FileOpen,
        SpanKind::Stall,
        SpanKind::ServerOutage,
        SpanKind::RecoveryStorm,
    ];

    /// Dense index into the span-aggregate array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Dotted lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FileOpen => "file.open",
            SpanKind::Stall => "rpc.stall",
            SpanKind::ServerOutage => "server.outage",
            SpanKind::RecoveryStorm => "recovery.storm",
        }
    }

    /// The `metrics::obs` bookkeeping key for this span kind.
    pub fn metrics_key(self) -> &'static str {
        match self {
            SpanKind::FileOpen => metrics::obs::SPAN_FILE_OPEN,
            SpanKind::Stall => metrics::obs::SPAN_STALL,
            SpanKind::ServerOutage => metrics::obs::SPAN_SERVER_OUTAGE,
            SpanKind::RecoveryStorm => metrics::obs::SPAN_RECOVERY_STORM,
        }
    }
}

/// The mergeable product of one observed cluster run: histograms, span
/// aggregates, and event counts. Like [`crate::SanitizerStats`] it is
/// kept out of the per-machine counter sets so observed runs stay
/// byte-identical to plain ones; it merges exactly (integer addition)
/// across clusters, days, and traces.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Per-RPC-kind latency histograms, indexed by [`RpcKind::index`].
    pub rpc: Vec<LogHistogram>,
    /// Retry/backoff waits spent on dropped or stalled RPCs.
    pub retry_wait: LogHistogram,
    /// Time dirty blocks sat in the write-back queue before cleaning.
    pub writeback_dwell: LogHistogram,
    /// Modeled per-reopen latency inside recovery storms.
    pub reopen_latency: LogHistogram,
    /// Span aggregates, indexed by [`SpanKind::index`].
    pub spans: Vec<SpanStat>,
    /// Event counts, indexed by [`ObsEventKind`] code.
    pub event_counts: Vec<u64>,
    /// RPCs that exhausted their retry budget, indexed by
    /// [`RpcKind::index`] — the per-kind breakdown of what the cluster
    /// counters only report as aggregate unavailability.
    pub retry_exhausted: Vec<u64>,
    /// Total events pushed into the ring (including overwritten).
    pub events_recorded: u64,
    /// Events lost to ring overwrite.
    pub events_dropped: u64,
    /// Capacity of the event ring that produced this report (the
    /// largest, when reports from differently-sized rings merge).
    pub ring_capacity: u64,
}

impl Default for ObsReport {
    fn default() -> Self {
        ObsReport::new()
    }
}

impl ObsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        ObsReport {
            rpc: (0..RpcKind::ALL.len()).map(|_| LogHistogram::new()).collect(),
            retry_wait: LogHistogram::new(),
            writeback_dwell: LogHistogram::new(),
            reopen_latency: LogHistogram::new(),
            spans: vec![SpanStat::default(); SpanKind::ALL.len()],
            event_counts: vec![0; ObsEventKind::ALL.len()],
            retry_exhausted: vec![0; RpcKind::ALL.len()],
            events_recorded: 0,
            events_dropped: 0,
            ring_capacity: RING_CAPACITY as u64,
        }
    }

    /// The latency histogram for one RPC kind.
    pub fn rpc_hist(&self, kind: RpcKind) -> &LogHistogram {
        &self.rpc[kind.index()]
    }

    /// The aggregate for one span kind.
    pub fn span(&self, kind: SpanKind) -> &SpanStat {
        &self.spans[kind.index()]
    }

    /// The count of one event kind.
    pub fn events(&self, kind: ObsEventKind) -> u64 {
        self.event_counts[kind.code() as usize]
    }

    /// Total RPC latency samples across all kinds.
    pub fn rpc_samples(&self) -> u64 {
        self.rpc.iter().map(|h| h.count()).sum()
    }

    /// Retry-budget exhaustions recorded for one RPC kind.
    pub fn exhausted(&self, kind: RpcKind) -> u64 {
        self.retry_exhausted[kind.index()]
    }

    /// Total retry-budget exhaustions across all RPC kinds.
    pub fn exhausted_total(&self) -> u64 {
        self.retry_exhausted.iter().sum()
    }

    /// Merges another report into this one (exact integer addition).
    pub fn merge(&mut self, other: &ObsReport) {
        for (a, b) in self.rpc.iter_mut().zip(other.rpc.iter()) {
            a.merge(b);
        }
        self.retry_wait.merge(&other.retry_wait);
        self.writeback_dwell.merge(&other.writeback_dwell);
        self.reopen_latency.merge(&other.reopen_latency);
        for (a, b) in self.spans.iter_mut().zip(other.spans.iter()) {
            a.merge(b);
        }
        for (a, b) in self.event_counts.iter_mut().zip(other.event_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.retry_exhausted.iter_mut().zip(other.retry_exhausted.iter()) {
            *a += b;
        }
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
        self.ring_capacity = self.ring_capacity.max(other.ring_capacity);
    }

    /// Percentage of recorded events lost to ring overwrite.
    pub fn drop_rate_pct(&self) -> f64 {
        if self.events_recorded == 0 {
            0.0
        } else {
            100.0 * self.events_dropped as f64 / self.events_recorded as f64
        }
    }

    /// One-line verdict used when `--observe` is passed to a report run
    /// (printed to stderr, like the sanitizer's).
    pub fn verdict(&self) -> String {
        format!(
            "sdfs-obs: {} events ({} dropped), {} rpc latency samples, {} spans",
            self.events_recorded,
            self.events_dropped,
            self.rpc_samples(),
            self.spans.iter().map(|s| s.count).sum::<u64>(),
        )
    }

    /// Renders the full human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("sdfs-obs self-measurement report\n");
        out.push_str(&format!(
            "  {} = {}, {} = {} ({:.1}% drop rate, ring capacity {})\n",
            metrics::obs::EVENTS_RECORDED,
            self.events_recorded,
            metrics::obs::EVENTS_DROPPED,
            self.events_dropped,
            self.drop_rate_pct(),
            self.ring_capacity,
        ));
        out.push_str("\n  events by kind:\n");
        for k in ObsEventKind::ALL {
            let n = self.events(k);
            if n > 0 {
                out.push_str(&format!("    {:<24} {:>12}\n", k.name(), n));
            }
        }
        out.push_str("\n  RPC latency (simulated microseconds):\n");
        out.push_str(&format!(
            "    {:<14} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "kind", "count", "p50", "p90", "p99", "max"
        ));
        for k in RpcKind::ALL {
            let h = self.rpc_hist(k);
            if !h.is_empty() {
                out.push_str(&format!(
                    "    {:<14} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                    k.name(),
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max()
                ));
            }
        }
        out.push_str(&format!(
            "\n  retry-budget exhaustion ({} = {}):\n",
            metrics::obs::EXHAUSTED_RPCS,
            self.exhausted_total(),
        ));
        for k in RpcKind::ALL {
            let n = self.exhausted(k);
            if n > 0 {
                out.push_str(&format!("    {:<14} {:>10}\n", k.name(), n));
            }
        }
        for (label, h) in [
            ("retry/backoff waits", &self.retry_wait),
            ("write-back queue dwell", &self.writeback_dwell),
            ("recovery reopen latency", &self.reopen_latency),
        ] {
            if h.is_empty() {
                out.push_str(&format!("\n  {label} (us): no samples\n"));
            } else {
                out.push_str(&format!(
                    "\n  {label} (us): count={} p50={} p90={} p99={} max={}\n",
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max()
                ));
            }
        }
        out.push_str("\n  spans:\n");
        out.push_str(&format!(
            "    {:<16} {:>10} {:>14} {:>14}\n",
            "kind", "count", "mean(ms)", "max(ms)"
        ));
        for k in SpanKind::ALL {
            let s = self.span(k);
            if s.count > 0 {
                out.push_str(&format!(
                    "    {:<16} {:>10} {:>14.3} {:>14.3}\n",
                    k.name(),
                    s.count,
                    s.mean_us() / 1_000.0,
                    s.max_us as f64 / 1_000.0
                ));
            }
        }
        out
    }

    /// Serializes the report as JSON (hand-rolled; the workspace is
    /// dependency-free). Keys follow the counter-name grammar.
    pub fn to_json(&self) -> String {
        fn hist_json(h: &LogHistogram) -> String {
            format!(
                "{{\"count\":{},\"sum_us\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            )
        }
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"summary\":{{\"{}\":{},\"{}\":{},\"{}\":{},\"{}\":{},\"{}\":{},\"{}\":{}",
            metrics::obs::EVENTS_RECORDED,
            self.events_recorded,
            metrics::obs::EVENTS_DROPPED,
            self.events_dropped,
            metrics::obs::RPC_SAMPLES,
            self.rpc_samples(),
            metrics::obs::RETRY_SAMPLES,
            self.retry_wait.count(),
            metrics::obs::DWELL_SAMPLES,
            self.writeback_dwell.count(),
            metrics::obs::REOPEN_SAMPLES,
            self.reopen_latency.count(),
        ));
        out.push_str(&format!(
            ",\"{}\":{}",
            metrics::obs::EXHAUSTED_RPCS,
            self.exhausted_total(),
        ));
        out.push_str(&format!(
            ",\"obs.ring.capacity\":{},\"obs.ring.drop_rate_pct\":{:.1}",
            self.ring_capacity,
            self.drop_rate_pct(),
        ));
        for k in SpanKind::ALL {
            out.push_str(&format!(",\"{}\":{}", k.metrics_key(), self.span(k).count));
        }
        out.push_str("},\"events\":{");
        let mut first = true;
        for k in ObsEventKind::ALL {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", k.name(), self.events(k)));
        }
        out.push_str("},\"retry_exhausted\":{");
        let mut first = true;
        for k in RpcKind::ALL {
            let n = self.exhausted(k);
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", k.name(), n));
        }
        out.push_str("},\"rpc_latency_us\":{");
        let mut first = true;
        for k in RpcKind::ALL {
            let h = self.rpc_hist(k);
            if h.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", k.name(), hist_json(h)));
        }
        out.push_str("},");
        out.push_str(&format!(
            "\"retry_wait_us\":{},\"writeback_dwell_us\":{},\"reopen_latency_us\":{},",
            hist_json(&self.retry_wait),
            hist_json(&self.writeback_dwell),
            hist_json(&self.reopen_latency)
        ));
        out.push_str("\"spans\":{");
        let mut first = true;
        for k in SpanKind::ALL {
            if !first {
                out.push(',');
            }
            first = false;
            let s = self.span(k);
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_us\":{},\"max_us\":{}}}",
                k.name(),
                s.count,
                s.total_us,
                s.max_us
            ));
        }
        out.push_str("}}");
        out
    }
}

/// The live collector carried by an observed cluster: an [`ObsReport`]
/// under construction plus the bounded event ring.
#[derive(Debug, Clone)]
pub struct Obs {
    report: ObsReport,
    ring: EventRing,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Creates a collector with the default ring capacity. All buffers
    /// are allocated here; the record paths never allocate.
    pub fn new() -> Self {
        Obs::with_capacity(RING_CAPACITY)
    }

    /// Creates a collector with an explicit event-ring capacity
    /// ([`crate::Config::obs_ring_capacity`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut report = ObsReport::new();
        report.ring_capacity = capacity as u64;
        Obs {
            report,
            ring: EventRing::with_capacity(capacity),
        }
    }

    /// Records one structured event.
    #[inline]
    pub fn event(&mut self, kind: ObsEventKind, time: SimTime, src: u16, dst: u16, arg: u64) {
        self.report.event_counts[kind.code() as usize] += 1;
        self.ring.push(ObsEvent {
            time,
            kind: kind.code(),
            src,
            dst,
            arg,
        });
    }

    /// Records one completed RPC: issue + complete events plus a
    /// latency sample in the per-kind histogram.
    pub fn rpc(
        &mut self,
        kind: RpcKind,
        time: SimTime,
        client: u16,
        server: u16,
        bytes: u64,
        latency: SimDuration,
    ) {
        self.event(ObsEventKind::RpcIssue, time, client, server, bytes);
        self.event(
            ObsEventKind::RpcComplete,
            time,
            client,
            server,
            latency.as_micros(),
        );
        self.report.rpc[kind.index()].record(latency.as_micros());
    }

    /// Records one retry/backoff wait (a dropped message or a stall
    /// slice against a down server).
    pub fn retry(&mut self, time: SimTime, client: u16, server: u16, ordinal: u64, wait: SimDuration) {
        self.event(ObsEventKind::RpcRetry, time, client, server, ordinal);
        self.report.retry_wait.record(wait.as_micros());
    }

    /// Records a write-back with the time the block dwelled dirty.
    pub fn writeback(&mut self, time: SimTime, client: u16, server: u16, dwell: SimDuration) {
        self.event(
            ObsEventKind::WriteBack,
            time,
            client,
            server,
            dwell.as_micros(),
        );
        self.report.writeback_dwell.record(dwell.as_micros());
    }

    /// Records one RPC that exhausted its retry budget against an
    /// unreachable server (down or behind a cut edge).
    pub fn exhaust(&mut self, kind: RpcKind) {
        self.report.retry_exhausted[kind.index()] += 1;
    }

    /// Records one storm reopen with its modeled latency.
    pub fn reopen(&mut self, time: SimTime, client: u16, server: u16, latency: SimDuration) {
        self.event(
            ObsEventKind::Reopen,
            time,
            client,
            server,
            latency.as_micros(),
        );
        self.report.reopen_latency.record(latency.as_micros());
    }

    /// Records a closed span.
    #[inline]
    pub fn span(&mut self, kind: SpanKind, d: SimDuration) {
        self.report.spans[kind.index()].record(d);
    }

    /// The retained event tail.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Finalizes the collector into its mergeable report.
    pub fn into_report(mut self) -> ObsReport {
        self.report.events_recorded = self.ring.recorded();
        self.report.events_dropped = self.ring.dropped();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn kind_codes_match_all_order() {
        for (i, k) in ObsEventKind::ALL.iter().enumerate() {
            assert_eq!(k.code() as usize, i);
        }
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn event_and_span_names_follow_grammar() {
        // Same grammar the metrics hygiene test enforces.
        let ok = |n: &str| {
            !n.is_empty()
                && n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
                && !n.starts_with(['.', '_'])
                && !n.ends_with(['.', '_'])
                && !n.contains("..")
        };
        for k in ObsEventKind::ALL {
            assert!(ok(k.name()), "{:?}", k);
        }
        for k in SpanKind::ALL {
            assert!(ok(k.name()), "{:?}", k);
        }
    }

    #[test]
    fn collector_roundtrip() {
        let mut obs = Obs::new();
        obs.rpc(RpcKind::Open, t(10), 1, 0, 0, d(1_500));
        obs.rpc(RpcKind::ReadBlock, t(20), 1, 0, 4_096, d(6_415));
        obs.retry(t(30), 2, 0, 1, d(50_000));
        obs.writeback(t(40), 3, 0, d(30_000_000));
        obs.reopen(t(50), 1, 0, d(3_000));
        obs.span(SpanKind::FileOpen, d(123_000));
        let rep = obs.into_report();
        assert_eq!(rep.events(ObsEventKind::RpcIssue), 2);
        assert_eq!(rep.events(ObsEventKind::RpcComplete), 2);
        assert_eq!(rep.events(ObsEventKind::RpcRetry), 1);
        assert_eq!(rep.rpc_hist(RpcKind::Open).p50(), 1_500);
        assert_eq!(rep.rpc_hist(RpcKind::ReadBlock).max(), 6_415);
        assert_eq!(rep.retry_wait.count(), 1);
        assert_eq!(rep.writeback_dwell.max(), 30_000_000);
        assert_eq!(rep.reopen_latency.count(), 1);
        assert_eq!(rep.span(SpanKind::FileOpen).count, 1);
        // 2 rpcs x (issue + complete) + retry + writeback + reopen.
        assert_eq!(rep.events_recorded, 7);
        assert_eq!(rep.events_dropped, 0);
        let txt = rep.render();
        assert!(txt.contains("read_block"));
        assert!(txt.contains("obs.events.recorded"));
        let json = rep.to_json();
        assert!(json.contains("\"rpc_latency_us\""));
        assert!(json.contains("\"obs.span.file.open\":1"));
    }

    #[test]
    fn exhaustion_counts_per_kind() {
        let mut obs = Obs::new();
        obs.exhaust(RpcKind::Open);
        obs.exhaust(RpcKind::Open);
        obs.exhaust(RpcKind::WriteBlock);
        let rep = obs.into_report();
        assert_eq!(rep.exhausted(RpcKind::Open), 2);
        assert_eq!(rep.exhausted(RpcKind::WriteBlock), 1);
        assert_eq!(rep.exhausted(RpcKind::Close), 0);
        assert_eq!(rep.exhausted_total(), 3);
        let txt = rep.render();
        assert!(txt.contains("retry-budget exhaustion"));
        assert!(txt.contains("obs.retry.exhausted.rpcs = 3"));
        let json = rep.to_json();
        assert!(json.contains("\"retry_exhausted\":{\"open\":2,\"write_block\":1}"));
        assert!(json.contains("\"obs.retry.exhausted.rpcs\":3"));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Obs::new();
        a.rpc(RpcKind::Open, t(1), 0, 0, 0, d(1_500));
        a.span(SpanKind::Stall, d(10));
        let mut b = Obs::new();
        b.rpc(RpcKind::Open, t(2), 1, 0, 0, d(2_500));
        b.retry(t(3), 1, 0, 2, d(100));
        let mut whole = Obs::new();
        whole.rpc(RpcKind::Open, t(1), 0, 0, 0, d(1_500));
        whole.span(SpanKind::Stall, d(10));
        whole.rpc(RpcKind::Open, t(2), 1, 0, 0, d(2_500));
        whole.retry(t(3), 1, 0, 2, d(100));
        let mut merged = a.into_report();
        merged.merge(&b.into_report());
        assert_eq!(merged, whole.into_report());
    }
}
