//! The shared file hierarchy: global per-file metadata.
//!
//! Sprite presents a single system image — one file tree served by a few
//! servers, no local disks. [`FileTable`] holds the authoritative
//! metadata for every file: existence, size, owning server, a version
//! stamp used by the consistency machinery, and the write times used to
//! estimate byte ages for the lifetime analysis (Figure 4).

use sdfs_simkit::{SimDuration, SimTime};
use sdfs_trace::{FileId, ServerId};

/// Authoritative metadata for one file or directory.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Whether the file currently exists.
    pub exists: bool,
    /// Whether it is a directory.
    pub is_dir: bool,
    /// Current size in bytes.
    pub size: u64,
    /// The server that stores it.
    pub server: ServerId,
    /// Version stamp; bumped on each open-for-write so clients can detect
    /// stale cached data at open time.
    pub version: u64,
    /// When the file was created (trace time).
    pub created_at: SimTime,
    /// When the oldest byte of the *current* content was written. Reset
    /// by truncation. For files that predate the simulation this is the
    /// trace start, the same estimation limit the paper had.
    pub oldest_write: SimTime,
    /// When the newest byte was written.
    pub newest_write: SimTime,
}

impl FileMeta {
    fn new(server: ServerId, is_dir: bool, now: SimTime) -> Self {
        FileMeta {
            exists: true,
            is_dir,
            size: 0,
            server,
            version: 1,
            created_at: now,
            oldest_write: now,
            newest_write: now,
        }
    }

    /// Records a write of the byte range ending now.
    pub fn note_write(&mut self, now: SimTime, was_empty: bool) {
        if was_empty {
            self.oldest_write = now;
        }
        self.newest_write = now;
    }

    /// Age of the oldest byte at `now`.
    pub fn oldest_age(&self, now: SimTime) -> SimDuration {
        now.since(self.oldest_write)
    }

    /// Age of the newest byte at `now`.
    pub fn newest_age(&self, now: SimTime) -> SimDuration {
        now.since(self.newest_write)
    }
}

/// The global file table, indexed densely by [`FileId`].
///
/// The workload generator allocates `FileId`s sequentially from zero, so
/// a plain vector suffices.
#[derive(Debug, Default)]
pub struct FileTable {
    files: Vec<Option<FileMeta>>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FileTable::default()
    }

    /// Creates (or re-creates) a file.
    pub fn create(&mut self, id: FileId, server: ServerId, is_dir: bool, now: SimTime) {
        crate::racecheck::guard(crate::racecheck::Resource::FileTable);
        let idx = id.raw() as usize;
        if idx >= self.files.len() {
            self.files.resize(idx + 1, None);
        }
        self.files[idx] = Some(FileMeta::new(server, is_dir, now));
    }

    /// Installs a pre-existing file without touching trace history: used
    /// to seed the namespace before the trace starts. Pre-existing
    /// content is dated at trace start.
    pub fn preload(&mut self, id: FileId, server: ServerId, is_dir: bool, size: u64) {
        self.create(id, server, is_dir, SimTime::ZERO);
        if let Some(meta) = self.get_mut(id) {
            meta.size = size;
        }
    }

    /// Returns the metadata for `id` if the file exists.
    pub fn get(&self, id: FileId) -> Option<&FileMeta> {
        crate::racecheck::guard(crate::racecheck::Resource::FileTable);
        self.files
            .get(id.raw() as usize)
            .and_then(|m| m.as_ref())
            .filter(|m| m.exists)
    }

    /// Mutable access to the metadata for `id` if the file exists.
    pub fn get_mut(&mut self, id: FileId) -> Option<&mut FileMeta> {
        crate::racecheck::guard(crate::racecheck::Resource::FileTable);
        self.files
            .get_mut(id.raw() as usize)
            .and_then(|m| m.as_mut())
            .filter(|m| m.exists)
    }

    /// Marks `id` deleted, returning its final metadata.
    pub fn delete(&mut self, id: FileId) -> Option<FileMeta> {
        crate::racecheck::guard(crate::racecheck::Resource::FileTable);
        let slot = self.files.get_mut(id.raw() as usize)?.as_mut()?;
        if !slot.exists {
            return None;
        }
        slot.exists = false;
        Some(slot.clone())
    }

    /// Number of slots (existing or deleted).
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` when the table has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over existing files.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &FileMeta)> + '_ {
        self.files
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (FileId(i as u64), m)))
            .filter(|(_, m)| m.exists)
    }
}

/// Deterministically assigns a file to a server with the measured skew:
/// most traffic went to a single Sun 4 server, the rest spread over the
/// other three.
pub fn assign_server(id: FileId, num_servers: u16) -> ServerId {
    if num_servers <= 1 {
        return ServerId(0);
    }
    // SplitMix-style hash of the id for a deterministic, well-mixed pick.
    let mut z = id.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 70% of files live on server 0; the rest spread evenly.
    let r = z % 100;
    if r < 70 {
        ServerId(0)
    } else {
        ServerId(1 + (z / 100 % (num_servers as u64 - 1)) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_delete() {
        let mut t = FileTable::new();
        t.create(FileId(3), ServerId(0), false, SimTime::from_secs(5));
        assert!(t.get(FileId(3)).is_some());
        assert!(t.get(FileId(0)).is_none());
        assert!(t.get(FileId(99)).is_none());
        let meta = t.delete(FileId(3)).expect("delete");
        assert_eq!(meta.created_at, SimTime::from_secs(5));
        assert!(t.get(FileId(3)).is_none());
        assert!(t.delete(FileId(3)).is_none(), "double delete");
    }

    #[test]
    fn recreate_after_delete() {
        let mut t = FileTable::new();
        t.create(FileId(1), ServerId(0), false, SimTime::from_secs(1));
        t.delete(FileId(1));
        t.create(FileId(1), ServerId(0), false, SimTime::from_secs(9));
        let m = t.get(FileId(1)).expect("recreated");
        assert_eq!(m.created_at, SimTime::from_secs(9));
        assert_eq!(m.size, 0);
    }

    #[test]
    fn preload_sets_size_and_epoch() {
        let mut t = FileTable::new();
        t.preload(FileId(0), ServerId(1), false, 12345);
        let m = t.get(FileId(0)).expect("preloaded");
        assert_eq!(m.size, 12345);
        assert_eq!(m.created_at, SimTime::ZERO);
        assert_eq!(m.oldest_write, SimTime::ZERO);
    }

    #[test]
    fn byte_ages() {
        let mut t = FileTable::new();
        t.create(FileId(0), ServerId(0), false, SimTime::from_secs(10));
        let m = t.get_mut(FileId(0)).expect("file");
        m.note_write(SimTime::from_secs(10), true);
        m.size = 100;
        m.note_write(SimTime::from_secs(40), false);
        let now = SimTime::from_secs(100);
        assert_eq!(m.oldest_age(now), SimDuration::from_secs(90));
        assert_eq!(m.newest_age(now), SimDuration::from_secs(60));
    }

    #[test]
    fn iter_skips_deleted() {
        let mut t = FileTable::new();
        t.create(FileId(0), ServerId(0), false, SimTime::ZERO);
        t.create(FileId(1), ServerId(0), false, SimTime::ZERO);
        t.delete(FileId(0));
        let ids: Vec<FileId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![FileId(1)]);
    }

    #[test]
    fn server_assignment_is_skewed_and_total() {
        let n = 10_000u64;
        let mut counts = [0u32; 4];
        for i in 0..n {
            let s = assign_server(FileId(i), 4);
            assert!(s.raw() < 4);
            counts[s.raw() as usize] += 1;
        }
        let main_frac = counts[0] as f64 / n as f64;
        assert!(
            (0.65..0.75).contains(&main_frac),
            "main server fraction {main_frac}"
        );
        for &c in &counts[1..] {
            assert!(c > 0, "every server gets some files");
        }
        assert_eq!(assign_server(FileId(5), 1), ServerId(0));
    }
}
