//! The client (and server) block cache.
//!
//! File data is cached on a block-by-block basis in 4-Kbyte blocks
//! (Section 5). The cache itself is mechanism only: it tracks which
//! blocks are present, their reference and dirty times, and
//! least-recently-used order. *Policy* — when to grow, when to shrink,
//! what eviction means — lives with the caller (the client trades pages
//! with the VM system; the server has a fixed capacity).
//!
//! Two structures keep the hot paths cheap:
//!
//! * LRU order is an intrusive doubly-linked list threaded through a
//!   slab, so a touch is one hash lookup plus O(1) pointer surgery.
//!   Simulated time never decreases, so list order is exactly the old
//!   `(last_ref, seq)` order.
//! * Dirty blocks are indexed by `(dirty_since, key)` in a B-tree, so
//!   the write-back daemon's 5-second scan visits only blocks that have
//!   actually expired instead of sweeping the whole dirty set.

use std::collections::BTreeSet;

use sdfs_simkit::{FastMap, FastSet, SimDuration, SimTime};
use sdfs_trace::FileId;

/// Identity of one cached block: a file and a block index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockKey {
    /// The file.
    pub file: FileId,
    /// Block index (byte offset / block size).
    pub index: u64,
}

/// Per-block cache state.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// Last reference time (LRU key).
    pub last_ref: SimTime,
    /// Whether the block holds data not yet written to the server.
    pub dirty: bool,
    /// When the block first became dirty in its current dirty episode.
    pub dirty_since: SimTime,
    /// When the block was last written by an application.
    pub last_write: SimTime,
    /// Application bytes accumulated in the block since it last became
    /// dirty; used to account write-back block padding.
    pub dirty_app_bytes: u64,
}

impl BlockEntry {
    /// Time since the last application write — the write-back queue
    /// dwell the observability layer records when the block is cleaned.
    pub fn dwell(&self, now: SimTime) -> SimDuration {
        now.since(self.last_write)
    }
}

/// Sentinel for "no slab slot".
const NIL: u32 = u32::MAX;

/// One slab slot: the entry plus its LRU list links.
#[derive(Debug, Clone)]
struct Slot {
    key: BlockKey,
    entry: BlockEntry,
    prev: u32,
    next: u32,
}

/// An LRU block cache.
#[derive(Debug, Default)]
pub struct BlockCache {
    /// Key → slab slot index.
    map: FastMap<BlockKey, u32>,
    /// Slot storage; freed slots are chained through `next`.
    slots: Vec<Slot>,
    /// Head of the free-slot chain.
    free: Vec<u32>,
    /// Least-recently-used slot (list head).
    head: u32,
    /// Most-recently-used slot (list tail).
    tail: u32,
    /// Dirty blocks ordered by the start of their dirty episode, for the
    /// daemon's expiry scan.
    dirty_by_time: BTreeSet<(SimTime, BlockKey)>,
    by_file: FastMap<FileId, FastSet<u64>>,
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BlockCache {
            map: FastMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty_by_time: BTreeSet::new(),
            by_file: FastMap::default(),
        }
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty_by_time.len()
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Returns the entry for `key`, if cached.
    pub fn get(&self, key: BlockKey) -> Option<&BlockEntry> {
        self.map.get(&key).map(|&i| &self.slots[i as usize].entry)
    }

    /// Unlinks slot `i` from the LRU list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the most-recently-used end.
    fn push_back(&mut self, i: u32) {
        let tail = self.tail;
        {
            let s = &mut self.slots[i as usize];
            s.prev = tail;
            s.next = NIL;
        }
        if tail != NIL {
            self.slots[tail as usize].next = i;
        } else {
            self.head = i;
        }
        self.tail = i;
    }

    /// Marks `key` referenced at `now`, refreshing its LRU position.
    /// Returns `true` if the block was present.
    pub fn touch(&mut self, key: BlockKey, now: SimTime) -> bool {
        self.touch_slot(key, now).is_some()
    }

    /// Touch that also returns the slot index, so callers needing the
    /// entry afterwards skip a second hash lookup.
    fn touch_slot(&mut self, key: BlockKey, now: SimTime) -> Option<u32> {
        let &i = self.map.get(&key)?;
        self.slots[i as usize].entry.last_ref = now;
        if self.tail != i {
            self.unlink(i);
            self.push_back(i);
        }
        Some(i)
    }

    /// Inserts a clean block referenced at `now`. The caller must have
    /// arranged capacity (this structure never evicts on its own).
    ///
    /// Inserting an already-present block just touches it.
    pub fn insert(&mut self, key: BlockKey, now: SimTime) {
        let entry = BlockEntry {
            last_ref: now,
            dirty: false,
            dirty_since: SimTime::ZERO,
            last_write: SimTime::ZERO,
            dirty_app_bytes: 0,
        };
        use std::collections::hash_map::Entry;
        match self.map.entry(key) {
            Entry::Occupied(occ) => {
                // Already present: insert degrades to a touch.
                let i = *occ.get();
                self.slots[i as usize].entry.last_ref = now;
                if self.tail != i {
                    self.unlink(i);
                    self.push_back(i);
                }
            }
            Entry::Vacant(vac) => {
                let i = match self.free.pop() {
                    Some(i) => {
                        let s = &mut self.slots[i as usize];
                        s.key = key;
                        s.entry = entry;
                        i
                    }
                    None => {
                        let i = self.slots.len() as u32;
                        self.slots.push(Slot {
                            key,
                            entry,
                            prev: NIL,
                            next: NIL,
                        });
                        i
                    }
                };
                vac.insert(i);
                self.push_back(i);
                self.by_file.entry(key.file).or_default().insert(key.index);
            }
        }
    }

    /// Marks `key` dirty at `now` with `app_bytes` of new application
    /// data. The block must already be cached.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is absent.
    pub fn mark_dirty(&mut self, key: BlockKey, now: SimTime, app_bytes: u64) {
        let present = self.mark_dirty_if_present(key, now, app_bytes);
        debug_assert!(present, "mark_dirty on absent block");
    }

    /// [`Self::mark_dirty`], but absent blocks are a no-op returning
    /// `false`. Lets the write path probe and dirty in one hash lookup.
    pub fn mark_dirty_if_present(&mut self, key: BlockKey, now: SimTime, app_bytes: u64) -> bool {
        let Some(i) = self.touch_slot(key, now) else {
            return false;
        };
        let entry = &mut self.slots[i as usize].entry;
        if !entry.dirty {
            entry.dirty = true;
            entry.dirty_since = now;
            entry.dirty_app_bytes = 0;
            self.dirty_by_time.insert((now, key));
        }
        entry.last_write = now;
        entry.dirty_app_bytes += app_bytes;
        true
    }

    /// Clears the dirty flag (the block was written to the server),
    /// returning the entry state just before cleaning.
    pub fn clean(&mut self, key: BlockKey) -> Option<BlockEntry> {
        let &i = self.map.get(&key)?;
        let entry = &mut self.slots[i as usize].entry;
        if !entry.dirty {
            return None;
        }
        let snapshot = entry.clone();
        entry.dirty = false;
        entry.dirty_app_bytes = 0;
        self.dirty_by_time.remove(&(snapshot.dirty_since, key));
        Some(snapshot)
    }

    /// Removes `key` outright, returning its final state.
    pub fn remove(&mut self, key: BlockKey) -> Option<BlockEntry> {
        let i = self.map.remove(&key)?;
        self.unlink(i);
        self.free.push(i);
        let entry = self.slots[i as usize].entry.clone();
        if entry.dirty {
            self.dirty_by_time.remove(&(entry.dirty_since, key));
        }
        if let Some(set) = self.by_file.get_mut(&key.file) {
            set.remove(&key.index);
            if set.is_empty() {
                self.by_file.remove(&key.file);
            }
        }
        Some(entry)
    }

    /// Returns (without removing) the least-recently-used block.
    pub fn peek_lru(&self) -> Option<(BlockKey, &BlockEntry)> {
        if self.head == NIL {
            return None;
        }
        let s = &self.slots[self.head as usize];
        Some((s.key, &s.entry))
    }

    /// Removes and returns the least-recently-used block.
    pub fn pop_lru(&mut self) -> Option<(BlockKey, BlockEntry)> {
        if self.head == NIL {
            return None;
        }
        let key = self.slots[self.head as usize].key;
        let entry = self.remove(key).expect("LRU entry must exist");
        Some((key, entry))
    }

    /// All cached block indices of `file`, sorted.
    pub fn blocks_of(&self, file: FileId) -> Vec<u64> {
        let mut v = Vec::new();
        self.blocks_of_into(file, &mut v);
        v
    }

    /// Fills `out` with the cached block indices of `file`, sorted.
    /// Clears `out` first, so a caller can reuse one scratch buffer.
    pub fn blocks_of_into(&self, file: FileId, out: &mut Vec<u64>) {
        out.clear();
        if let Some(s) = self.by_file.get(&file) {
            out.extend(s.iter().copied());
        }
        out.sort_unstable();
    }

    /// All dirty block indices of `file`, sorted.
    pub fn dirty_blocks_of(&self, file: FileId) -> Vec<u64> {
        let mut v = Vec::new();
        self.dirty_blocks_of_into(file, &mut v);
        v
    }

    /// Fills `out` with the dirty block indices of `file`, sorted.
    /// Clears `out` first, so a caller can reuse one scratch buffer.
    pub fn dirty_blocks_of_into(&self, file: FileId, out: &mut Vec<u64>) {
        out.clear();
        if let Some(s) = self.by_file.get(&file) {
            out.extend(s.iter().copied().filter(|&i| {
                self.get(BlockKey { file, index: i })
                    .is_some_and(|e| e.dirty)
            }));
        }
        out.sort_unstable();
    }

    /// Files that have at least one block dirty since `cutoff` or
    /// earlier — the write-back daemon's scan ("all dirty blocks for a
    /// file are written if any block of the file has been dirty for 30
    /// seconds").
    pub fn files_with_dirty_before(&self, cutoff: SimTime) -> Vec<FileId> {
        let mut files = Vec::new();
        self.files_with_dirty_before_into(cutoff, &mut files);
        files
    }

    /// Fills `out` with the files having a block dirty since `cutoff` or
    /// earlier, sorted and deduplicated. Clears `out` first. Visits only
    /// the expired range of the dirty index, so an idle tick is O(1).
    pub fn files_with_dirty_before_into(&self, cutoff: SimTime, out: &mut Vec<FileId>) {
        out.clear();
        let end = (
            cutoff,
            BlockKey {
                file: FileId(u64::MAX),
                index: u64::MAX,
            },
        );
        out.extend(self.dirty_by_time.range(..=end).map(|&(_, k)| k.file));
        out.sort_unstable();
        out.dedup();
    }

    /// Age since last reference for `key` at `now` (for Table 8).
    pub fn ref_age(&self, key: BlockKey, now: SimTime) -> Option<SimDuration> {
        self.get(key).map(|e| now.since(e.last_ref))
    }

    /// The block that has been dirty longest, with the start of its
    /// dirty episode. O(log n); used by the sanitizer's write-back
    /// window check after each daemon tick.
    pub fn oldest_dirty(&self) -> Option<(SimTime, BlockKey)> {
        self.dirty_by_time.iter().next().copied()
    }

    /// Cross-checks every internal index against the map: the LRU list
    /// must thread exactly the live slots in non-decreasing `last_ref`
    /// order, the dirty index must list exactly the dirty entries, and
    /// the per-file index must partition the keys. Returns the first
    /// inconsistency found. O(n); used by the sanitizer's deep audit.
    pub fn audit(&self) -> Result<(), String> {
        // Walk the LRU list.
        let mut walked = 0usize;
        let mut prev = NIL;
        let mut prev_ref: Option<SimTime> = None;
        let mut i = self.head;
        while i != NIL {
            let slot = &self.slots[i as usize];
            if slot.prev != prev {
                return Err(format!("LRU back-link broken at slot {i}"));
            }
            if self.map.get(&slot.key) != Some(&i) {
                return Err(format!("LRU slot {i} holds {:?} not mapped to it", slot.key));
            }
            if let Some(p) = prev_ref {
                if slot.entry.last_ref < p {
                    return Err(format!("LRU order violated at slot {i}"));
                }
            }
            prev_ref = Some(slot.entry.last_ref);
            prev = i;
            i = slot.next;
            walked += 1;
            if walked > self.slots.len() {
                return Err("LRU list cycles".to_string());
            }
        }
        if self.tail != prev {
            return Err("LRU tail does not end the list".to_string());
        }
        if walked != self.map.len() {
            return Err(format!(
                "LRU list threads {walked} slots, map holds {}",
                self.map.len()
            ));
        }
        // Dirty index ⇔ dirty entries.
        let dirty_entries = self
            .map
            .iter()
            .filter(|(_, &i)| self.slots[i as usize].entry.dirty)
            .count();
        if dirty_entries != self.dirty_by_time.len() {
            return Err(format!(
                "dirty index holds {} blocks, {} entries are dirty",
                self.dirty_by_time.len(),
                dirty_entries
            ));
        }
        for &(since, key) in &self.dirty_by_time {
            match self.get(key) {
                Some(e) if e.dirty && e.dirty_since == since => {}
                _ => return Err(format!("dirty index entry {key:?}@{since} is wrong")),
            }
        }
        // Per-file index ⇔ keys.
        let indexed: usize = self.by_file.values().map(|s| s.len()).sum();
        if indexed != self.map.len() {
            return Err(format!(
                "per-file index holds {indexed} blocks, map holds {}",
                self.map.len()
            ));
        }
        for key in self.map.keys() {
            if !self
                .by_file
                .get(&key.file)
                .is_some_and(|s| s.contains(&key.index))
            {
                return Err(format!("{key:?} missing from per-file index"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, index: u64) -> BlockKey {
        BlockKey {
            file: FileId(file),
            index,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_touch_lru_order() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.insert(key(1, 1), t(2));
        c.insert(key(2, 0), t(3));
        assert_eq!(c.len(), 3);
        // Touch the oldest; LRU should now be (1,1).
        assert!(c.touch(key(1, 0), t(4)));
        let (lru, _) = c.peek_lru().expect("non-empty");
        assert_eq!(lru, key(1, 1));
        let (popped, _) = c.pop_lru().expect("non-empty");
        assert_eq!(popped, key(1, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_ties_break_by_insertion_order() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(5));
        c.insert(key(2, 0), t(5));
        let (first, _) = c.pop_lru().expect("non-empty");
        assert_eq!(first, key(1, 0));
    }

    #[test]
    fn dirty_lifecycle() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.mark_dirty(key(1, 0), t(2), 100);
        c.mark_dirty(key(1, 0), t(3), 50);
        assert_eq!(c.dirty_len(), 1);
        let entry = c.get(key(1, 0)).expect("cached");
        assert_eq!(entry.dirty_since, t(2), "first dirtying sets the clock");
        assert_eq!(entry.dirty_app_bytes, 150);
        assert_eq!(entry.last_write, t(3));

        let before = c.clean(key(1, 0)).expect("was dirty");
        assert!(before.dirty);
        assert_eq!(c.dirty_len(), 0);
        assert!(c.clean(key(1, 0)).is_none(), "already clean");
        // Dirtying again restarts the episode.
        c.mark_dirty(key(1, 0), t(10), 7);
        assert_eq!(c.get(key(1, 0)).expect("cached").dirty_since, t(10));
        assert_eq!(c.get(key(1, 0)).expect("cached").dirty_app_bytes, 7);
    }

    #[test]
    fn daemon_scan_finds_old_dirty_files() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(0));
        c.insert(key(2, 0), t(0));
        c.insert(key(3, 0), t(0));
        c.mark_dirty(key(1, 0), t(10), 1);
        c.mark_dirty(key(2, 0), t(50), 1);
        // Cutoff 20: only file 1 has been dirty since before t=20.
        assert_eq!(c.files_with_dirty_before(t(20)), vec![FileId(1)]);
        // Cutoff 60: both dirty files.
        assert_eq!(c.files_with_dirty_before(t(60)), vec![FileId(1), FileId(2)]);
    }

    #[test]
    fn per_file_views() {
        let mut c = BlockCache::new();
        c.insert(key(7, 3), t(1));
        c.insert(key(7, 1), t(1));
        c.insert(key(8, 0), t(1));
        c.mark_dirty(key(7, 1), t(2), 1);
        assert_eq!(c.blocks_of(FileId(7)), vec![1, 3]);
        assert_eq!(c.dirty_blocks_of(FileId(7)), vec![1]);
        assert!(c.blocks_of(FileId(9)).is_empty());
        c.remove(key(7, 1));
        c.remove(key(7, 3));
        assert!(c.blocks_of(FileId(7)).is_empty());
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn remove_returns_state() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.mark_dirty(key(1, 0), t(2), 42);
        let e = c.remove(key(1, 0)).expect("present");
        assert!(e.dirty);
        assert_eq!(e.dirty_app_bytes, 42);
        assert!(c.remove(key(1, 0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_touches() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.insert(key(2, 0), t(2));
        c.insert(key(1, 0), t(3)); // re-insert acts as touch
        assert_eq!(c.len(), 2);
        let (lru, _) = c.peek_lru().expect("non-empty");
        assert_eq!(lru, key(2, 0));
    }

    #[test]
    fn ref_age() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(10));
        assert_eq!(
            c.ref_age(key(1, 0), t(70)),
            Some(SimDuration::from_secs(60))
        );
        assert_eq!(c.ref_age(key(9, 9), t(70)), None);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut c = BlockCache::new();
        for round in 0..4u64 {
            for i in 0..8u64 {
                c.insert(key(1, i), t(round * 10 + i));
            }
            for i in 0..8u64 {
                c.remove(key(1, i));
            }
        }
        assert!(c.is_empty());
        assert!(c.slots.len() <= 8, "slots reused, got {}", c.slots.len());
    }

    #[test]
    fn interleaved_touch_keeps_list_consistent() {
        let mut c = BlockCache::new();
        for i in 0..16u64 {
            c.insert(key(i % 3, i), t(i));
        }
        for i in (0..16u64).rev() {
            c.touch(key(i % 3, i), t(100 + (16 - i)));
        }
        // Pop everything; order must be the reverse-touch order.
        let mut popped = Vec::new();
        while let Some((k, _)) = c.pop_lru() {
            popped.push(k.index);
        }
        assert_eq!(popped, (0..16u64).rev().collect::<Vec<_>>());
    }
}
