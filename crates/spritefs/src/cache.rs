//! The client (and server) block cache.
//!
//! File data is cached on a block-by-block basis in 4-Kbyte blocks
//! (Section 5). The cache itself is mechanism only: it tracks which
//! blocks are present, their reference and dirty times, and
//! least-recently-used order. *Policy* — when to grow, when to shrink,
//! what eviction means — lives with the caller (the client trades pages
//! with the VM system; the server has a fixed capacity).

use std::collections::{BTreeSet, HashMap, HashSet};

use sdfs_simkit::{SimDuration, SimTime};
use sdfs_trace::FileId;

/// Identity of one cached block: a file and a block index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockKey {
    /// The file.
    pub file: FileId,
    /// Block index (byte offset / block size).
    pub index: u64,
}

/// Per-block cache state.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// Last reference time (LRU key).
    pub last_ref: SimTime,
    /// Monotonic sequence for deterministic LRU tie-breaks.
    seq: u64,
    /// Whether the block holds data not yet written to the server.
    pub dirty: bool,
    /// When the block first became dirty in its current dirty episode.
    pub dirty_since: SimTime,
    /// When the block was last written by an application.
    pub last_write: SimTime,
    /// Application bytes accumulated in the block since it last became
    /// dirty; used to account write-back block padding.
    pub dirty_app_bytes: u64,
}

/// An LRU block cache.
#[derive(Debug, Default)]
pub struct BlockCache {
    blocks: HashMap<BlockKey, BlockEntry>,
    lru: BTreeSet<(SimTime, u64, BlockKey)>,
    dirty: HashSet<BlockKey>,
    by_file: HashMap<FileId, HashSet<u64>>,
    seq: u64,
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BlockCache::default()
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.blocks.contains_key(&key)
    }

    /// Returns the entry for `key`, if cached.
    pub fn get(&self, key: BlockKey) -> Option<&BlockEntry> {
        self.blocks.get(&key)
    }

    /// Marks `key` referenced at `now`, refreshing its LRU position.
    /// Returns `true` if the block was present.
    pub fn touch(&mut self, key: BlockKey, now: SimTime) -> bool {
        let Some(entry) = self.blocks.get_mut(&key) else {
            return false;
        };
        self.lru.remove(&(entry.last_ref, entry.seq, key));
        entry.last_ref = now;
        entry.seq = self.seq;
        self.lru.insert((now, self.seq, key));
        self.seq += 1;
        true
    }

    /// Inserts a clean block referenced at `now`. The caller must have
    /// arranged capacity (this structure never evicts on its own).
    ///
    /// Inserting an already-present block just touches it.
    pub fn insert(&mut self, key: BlockKey, now: SimTime) {
        if self.touch(key, now) {
            return;
        }
        let entry = BlockEntry {
            last_ref: now,
            seq: self.seq,
            dirty: false,
            dirty_since: SimTime::ZERO,
            last_write: SimTime::ZERO,
            dirty_app_bytes: 0,
        };
        self.lru.insert((now, self.seq, key));
        self.seq += 1;
        self.blocks.insert(key, entry);
        self.by_file.entry(key.file).or_default().insert(key.index);
    }

    /// Marks `key` dirty at `now` with `app_bytes` of new application
    /// data. The block must already be cached.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is absent.
    pub fn mark_dirty(&mut self, key: BlockKey, now: SimTime, app_bytes: u64) {
        self.touch(key, now);
        let Some(entry) = self.blocks.get_mut(&key) else {
            debug_assert!(false, "mark_dirty on absent block");
            return;
        };
        if !entry.dirty {
            entry.dirty = true;
            entry.dirty_since = now;
            entry.dirty_app_bytes = 0;
            self.dirty.insert(key);
        }
        entry.last_write = now;
        entry.dirty_app_bytes += app_bytes;
    }

    /// Clears the dirty flag (the block was written to the server),
    /// returning the entry state just before cleaning.
    pub fn clean(&mut self, key: BlockKey) -> Option<BlockEntry> {
        let entry = self.blocks.get_mut(&key)?;
        if !entry.dirty {
            return None;
        }
        let snapshot = entry.clone();
        entry.dirty = false;
        entry.dirty_app_bytes = 0;
        self.dirty.remove(&key);
        Some(snapshot)
    }

    /// Removes `key` outright, returning its final state.
    pub fn remove(&mut self, key: BlockKey) -> Option<BlockEntry> {
        let entry = self.blocks.remove(&key)?;
        self.lru.remove(&(entry.last_ref, entry.seq, key));
        self.dirty.remove(&key);
        if let Some(set) = self.by_file.get_mut(&key.file) {
            set.remove(&key.index);
            if set.is_empty() {
                self.by_file.remove(&key.file);
            }
        }
        Some(entry)
    }

    /// Returns (without removing) the least-recently-used block.
    pub fn peek_lru(&self) -> Option<(BlockKey, &BlockEntry)> {
        let &(_, _, key) = self.lru.iter().next()?;
        Some((key, &self.blocks[&key]))
    }

    /// Removes and returns the least-recently-used block.
    pub fn pop_lru(&mut self) -> Option<(BlockKey, BlockEntry)> {
        let &(_, _, key) = self.lru.iter().next()?;
        let entry = self.remove(key).expect("LRU entry must exist");
        Some((key, entry))
    }

    /// All cached block indices of `file`, sorted.
    pub fn blocks_of(&self, file: FileId) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .by_file
            .get(&file)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// All dirty block indices of `file`, sorted.
    pub fn dirty_blocks_of(&self, file: FileId) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .by_file
            .get(&file)
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|&i| {
                        self.blocks
                            .get(&BlockKey { file, index: i })
                            .is_some_and(|e| e.dirty)
                    })
                    .collect()
            })
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Files that have at least one block dirty since `cutoff` or
    /// earlier — the write-back daemon's scan ("all dirty blocks for a
    /// file are written if any block of the file has been dirty for 30
    /// seconds").
    pub fn files_with_dirty_before(&self, cutoff: SimTime) -> Vec<FileId> {
        let mut files: Vec<FileId> = self
            .dirty
            .iter()
            .filter(|k| self.blocks[k].dirty_since <= cutoff)
            .map(|k| k.file)
            .collect();
        files.sort_unstable();
        files.dedup();
        files
    }

    /// Age since last reference for `key` at `now` (for Table 8).
    pub fn ref_age(&self, key: BlockKey, now: SimTime) -> Option<SimDuration> {
        self.blocks.get(&key).map(|e| now.since(e.last_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, index: u64) -> BlockKey {
        BlockKey {
            file: FileId(file),
            index,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_touch_lru_order() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.insert(key(1, 1), t(2));
        c.insert(key(2, 0), t(3));
        assert_eq!(c.len(), 3);
        // Touch the oldest; LRU should now be (1,1).
        assert!(c.touch(key(1, 0), t(4)));
        let (lru, _) = c.peek_lru().expect("non-empty");
        assert_eq!(lru, key(1, 1));
        let (popped, _) = c.pop_lru().expect("non-empty");
        assert_eq!(popped, key(1, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_ties_break_by_insertion_order() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(5));
        c.insert(key(2, 0), t(5));
        let (first, _) = c.pop_lru().expect("non-empty");
        assert_eq!(first, key(1, 0));
    }

    #[test]
    fn dirty_lifecycle() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.mark_dirty(key(1, 0), t(2), 100);
        c.mark_dirty(key(1, 0), t(3), 50);
        assert_eq!(c.dirty_len(), 1);
        let entry = c.get(key(1, 0)).expect("cached");
        assert_eq!(entry.dirty_since, t(2), "first dirtying sets the clock");
        assert_eq!(entry.dirty_app_bytes, 150);
        assert_eq!(entry.last_write, t(3));

        let before = c.clean(key(1, 0)).expect("was dirty");
        assert!(before.dirty);
        assert_eq!(c.dirty_len(), 0);
        assert!(c.clean(key(1, 0)).is_none(), "already clean");
        // Dirtying again restarts the episode.
        c.mark_dirty(key(1, 0), t(10), 7);
        assert_eq!(c.get(key(1, 0)).expect("cached").dirty_since, t(10));
        assert_eq!(c.get(key(1, 0)).expect("cached").dirty_app_bytes, 7);
    }

    #[test]
    fn daemon_scan_finds_old_dirty_files() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(0));
        c.insert(key(2, 0), t(0));
        c.insert(key(3, 0), t(0));
        c.mark_dirty(key(1, 0), t(10), 1);
        c.mark_dirty(key(2, 0), t(50), 1);
        // Cutoff 20: only file 1 has been dirty since before t=20.
        assert_eq!(c.files_with_dirty_before(t(20)), vec![FileId(1)]);
        // Cutoff 60: both dirty files.
        assert_eq!(c.files_with_dirty_before(t(60)), vec![FileId(1), FileId(2)]);
    }

    #[test]
    fn per_file_views() {
        let mut c = BlockCache::new();
        c.insert(key(7, 3), t(1));
        c.insert(key(7, 1), t(1));
        c.insert(key(8, 0), t(1));
        c.mark_dirty(key(7, 1), t(2), 1);
        assert_eq!(c.blocks_of(FileId(7)), vec![1, 3]);
        assert_eq!(c.dirty_blocks_of(FileId(7)), vec![1]);
        assert!(c.blocks_of(FileId(9)).is_empty());
        c.remove(key(7, 1));
        c.remove(key(7, 3));
        assert!(c.blocks_of(FileId(7)).is_empty());
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn remove_returns_state() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.mark_dirty(key(1, 0), t(2), 42);
        let e = c.remove(key(1, 0)).expect("present");
        assert!(e.dirty);
        assert_eq!(e.dirty_app_bytes, 42);
        assert!(c.remove(key(1, 0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_touches() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(1));
        c.insert(key(2, 0), t(2));
        c.insert(key(1, 0), t(3)); // re-insert acts as touch
        assert_eq!(c.len(), 2);
        let (lru, _) = c.peek_lru().expect("non-empty");
        assert_eq!(lru, key(2, 0));
    }

    #[test]
    fn ref_age() {
        let mut c = BlockCache::new();
        c.insert(key(1, 0), t(10));
        assert_eq!(
            c.ref_age(key(1, 0), t(70)),
            Some(SimDuration::from_secs(60))
        );
        assert_eq!(c.ref_age(key(9, 9), t(70)), None);
    }
}
