//! Per-client physical memory management: the file cache ↔ virtual
//! memory page trade.
//!
//! Sprite's file caches "vary in size depending on the needs of the file
//! system and the virtual memory system", with VM receiving preference: a
//! page used for virtual memory cannot be converted to a file cache page
//! unless it has been unreferenced for at least 20 minutes (Section 5).
//! [`MemoryManager`] implements that accounting:
//!
//! * The file cache grows one page at a time, first from free memory,
//!   then from VM pages idle past the preference window; otherwise it
//!   must evict one of its own blocks.
//! * The VM system grows by reusing its own idle pages, then free
//!   memory, and finally by taking pages from the file cache (LRU blocks,
//!   evicted immediately — no waiting period in that direction).
//! * Code pages of exited programs are *retained* among the idle VM pages
//!   and re-used by new invocations of the same program, until the pages
//!   are reclaimed or the retention window passes.

use std::collections::VecDeque;

use sdfs_simkit::FastMap;

use sdfs_simkit::{SimDuration, SimTime};
use sdfs_trace::FileId;

/// How a file-cache page request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcGrant {
    /// A free physical page was available.
    FromFree,
    /// A VM page idle past the preference window was converted.
    FromIdleVm,
    /// No page available: the cache must evict one of its own blocks.
    MustEvict,
}

/// Physical-page accounting for one client workstation.
#[derive(Debug)]
pub struct MemoryManager {
    total_pages: u64,
    reserved_pages: u64,
    /// Pages currently owned by the VM system (active + idle).
    vm_pages: u64,
    /// Pages owned by the file cache (mirrors the block cache size).
    fc_pages: u64,
    /// Idle VM pages in release order: (released_at, count).
    idle: VecDeque<(SimTime, u64)>,
    idle_total: u64,
    /// Retained code pages by executable: (pages, last_exit).
    retained: FastMap<FileId, (u64, SimTime)>,
    retained_total: u64,
    /// VM preference window (20 minutes in Sprite).
    preference: SimDuration,
    /// How long retained code stays usable.
    code_retention: SimDuration,
}

impl MemoryManager {
    /// Creates a manager for a machine with `total_bytes` of memory, of
    /// which `reserved_bytes` is kernel/fixed, with the given page size.
    pub fn new(
        total_bytes: u64,
        reserved_bytes: u64,
        page_size: u64,
        preference: SimDuration,
        code_retention: SimDuration,
    ) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(reserved_bytes < total_bytes, "reservation exceeds memory");
        MemoryManager {
            total_pages: total_bytes / page_size,
            reserved_pages: reserved_bytes / page_size,
            vm_pages: 0,
            fc_pages: 0,
            idle: VecDeque::new(),
            idle_total: 0,
            retained: FastMap::default(),
            retained_total: 0,
            preference,
            code_retention,
        }
    }

    /// Pages not owned by anyone.
    pub fn free_pages(&self) -> u64 {
        self.total_pages
            .saturating_sub(self.reserved_pages)
            .saturating_sub(self.vm_pages)
            .saturating_sub(self.fc_pages)
    }

    /// Current file-cache size in pages.
    pub fn fc_pages(&self) -> u64 {
        self.fc_pages
    }

    /// Current VM holding in pages (active plus idle).
    pub fn vm_pages(&self) -> u64 {
        self.vm_pages
    }

    /// Idle VM pages awaiting reuse or reclamation.
    pub fn idle_vm_pages(&self) -> u64 {
        self.idle_total
    }

    /// The file cache asks for one page (to cache a new block).
    pub fn fc_acquire(&mut self, now: SimTime) -> FcGrant {
        if self.free_pages() > 0 {
            self.fc_pages += 1;
            return FcGrant::FromFree;
        }
        // VM preference: only idle-past-window pages may be converted.
        if let Some(&(since, _)) = self.idle.front() {
            if now.since(since) >= self.preference {
                self.consume_idle_oldest(1);
                self.vm_pages -= 1;
                self.fc_pages += 1;
                return FcGrant::FromIdleVm;
            }
        }
        FcGrant::MustEvict
    }

    /// The file cache dropped `n` blocks (invalidate, delete, or eviction
    /// where the page returns to the free pool).
    pub fn fc_release(&mut self, n: u64) {
        debug_assert!(self.fc_pages >= n, "releasing more FC pages than held");
        self.fc_pages = self.fc_pages.saturating_sub(n);
    }

    /// The VM system needs `n` pages for processes. Reuses idle VM pages
    /// and free memory first; returns the number of pages the caller must
    /// evict from the file cache (which should then call
    /// [`MemoryManager::steal_from_fc`] for each).
    pub fn vm_acquire(&mut self, n: u64) -> u64 {
        let mut need = n;
        // Reuse idle VM pages (newest first — most likely still warm).
        let reuse = need.min(self.idle_total);
        if reuse > 0 {
            self.consume_idle_newest(reuse);
            need -= reuse;
        }
        // Then free memory.
        let free = self.free_pages().min(need);
        self.vm_pages += free;
        need -= free;
        // The remainder must come from the file cache.
        need
    }

    /// Transfers one page from the file cache to VM (after the caller
    /// evicted an LRU block).
    pub fn steal_from_fc(&mut self) {
        debug_assert!(self.fc_pages > 0, "stealing from empty file cache");
        self.fc_pages = self.fc_pages.saturating_sub(1);
        self.vm_pages += 1;
    }

    /// Grows the VM holding without a physical page (overcommit): used
    /// when demand exceeds physical memory and the file cache has
    /// nothing left to give. Real Sprite would be paging hard here; the
    /// workload models that traffic explicitly through backing files.
    pub fn force_grow(&mut self, n: u64) {
        self.vm_pages += n;
    }

    /// The VM system released `n` pages (process exit); they become idle
    /// but remain VM-owned until reclaimed.
    pub fn vm_release(&mut self, now: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        debug_assert!(
            self.vm_pages >= self.idle_total + n,
            "releasing more VM pages than active"
        );
        self.idle.push_back((now, n));
        self.idle_total += n;
    }

    /// Records that `pages` of code for `exec` remain in (idle) memory
    /// after exit, reusable by a future invocation.
    pub fn retain_code(&mut self, exec: FileId, pages: u64, now: SimTime) {
        if pages == 0 {
            return;
        }
        let entry = self.retained.entry(exec).or_insert((0, now));
        // Keep the larger footprint; refresh the timestamp.
        entry.0 = entry.0.max(pages);
        entry.1 = now;
        self.recompute_retained_total();
        self.trim_retained();
    }

    /// Checks whether a new invocation of `exec` can reuse retained code
    /// pages. On a hit the pages move back to active VM use and the
    /// retained entry is consumed; returns the number of pages reused.
    pub fn code_hit(&mut self, exec: FileId, now: SimTime) -> u64 {
        let Some(&(pages, last_exit)) = self.retained.get(&exec) else {
            return 0;
        };
        if now.since(last_exit) > self.code_retention {
            self.retained.remove(&exec);
            self.recompute_retained_total();
            return 0;
        }
        // The pages were idle; pull them back into active use.
        let reclaim = pages.min(self.idle_total);
        self.consume_idle_newest(reclaim);
        self.retained.remove(&exec);
        self.recompute_retained_total();
        reclaim
    }

    fn consume_idle_oldest(&mut self, mut n: u64) {
        while n > 0 {
            let Some(front) = self.idle.front_mut() else {
                break;
            };
            let take = front.1.min(n);
            front.1 -= take;
            self.idle_total -= take;
            n -= take;
            if front.1 == 0 {
                self.idle.pop_front();
            }
        }
        self.trim_retained();
    }

    fn consume_idle_newest(&mut self, mut n: u64) {
        while n > 0 {
            let Some(back) = self.idle.back_mut() else {
                break;
            };
            let take = back.1.min(n);
            back.1 -= take;
            self.idle_total -= take;
            n -= take;
            if back.1 == 0 {
                self.idle.pop_back();
            }
        }
        self.trim_retained();
    }

    fn recompute_retained_total(&mut self) {
        self.retained_total = self.retained.values().map(|&(p, _)| p).sum();
    }

    /// Retained code can only live in idle pages; if idle shrank below
    /// the retained total, drop the oldest-retained programs.
    fn trim_retained(&mut self) {
        while self.retained_total > self.idle_total {
            let Some((&exec, _)) = self
                .retained
                .iter()
                .min_by_key(|(id, &(_, at))| (at, id.raw()))
            else {
                break;
            };
            self.retained.remove(&exec);
            self.recompute_retained_total();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(total_pages: u64) -> MemoryManager {
        MemoryManager::new(
            total_pages * 4096,
            0,
            4096,
            SimDuration::from_mins(20),
            SimDuration::from_mins(20),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fc_grows_from_free() {
        let mut m = mm(10);
        for _ in 0..10 {
            assert_eq!(m.fc_acquire(t(0)), FcGrant::FromFree);
        }
        assert_eq!(m.fc_pages(), 10);
        assert_eq!(m.free_pages(), 0);
        assert_eq!(m.fc_acquire(t(1)), FcGrant::MustEvict);
    }

    #[test]
    fn vm_preference_window_blocks_young_idle_pages() {
        let mut m = mm(10);
        // VM takes everything, then releases half at t=0.
        assert_eq!(m.vm_acquire(10), 0);
        m.vm_release(t(0), 5);
        // At t=60 s the idle pages are too young for the file cache.
        assert_eq!(m.fc_acquire(t(60)), FcGrant::MustEvict);
        // After 20 minutes they are fair game.
        assert_eq!(m.fc_acquire(t(1300)), FcGrant::FromIdleVm);
        assert_eq!(m.fc_pages(), 1);
        assert_eq!(m.vm_pages(), 9);
    }

    #[test]
    fn vm_steals_from_file_cache_immediately() {
        let mut m = mm(10);
        for _ in 0..10 {
            m.fc_acquire(t(0));
        }
        // VM wants 3 pages; no free, no idle — must come from the cache.
        let steal = m.vm_acquire(3);
        assert_eq!(steal, 3);
        for _ in 0..steal {
            m.steal_from_fc();
        }
        assert_eq!(m.fc_pages(), 7);
        assert_eq!(m.vm_pages(), 3);
    }

    #[test]
    fn vm_reuses_own_idle_first() {
        let mut m = mm(10);
        assert_eq!(m.vm_acquire(6), 0);
        m.vm_release(t(0), 4);
        assert_eq!(m.idle_vm_pages(), 4);
        // New demand of 3 comes entirely from idle; vm total unchanged.
        assert_eq!(m.vm_acquire(3), 0);
        assert_eq!(m.idle_vm_pages(), 1);
        assert_eq!(m.vm_pages(), 6);
    }

    #[test]
    fn code_retention_hit_and_expiry() {
        let mut m = mm(100);
        assert_eq!(m.vm_acquire(20), 0);
        m.vm_release(t(100), 20);
        m.retain_code(FileId(7), 8, t(100));
        // Within the window: hit, pages move back to active.
        let hit = m.code_hit(FileId(7), t(200));
        assert_eq!(hit, 8);
        assert_eq!(m.idle_vm_pages(), 12);
        // Second lookup misses (consumed).
        assert_eq!(m.code_hit(FileId(7), t(201)), 0);

        // Expired retention.
        m.retain_code(FileId(9), 4, t(300));
        assert_eq!(m.code_hit(FileId(9), t(300 + 2000)), 0);
    }

    #[test]
    fn reclaiming_idle_drops_retained_code() {
        let mut m = mm(10);
        assert_eq!(m.vm_acquire(10), 0);
        m.vm_release(t(0), 6);
        m.retain_code(FileId(1), 6, t(0));
        // The file cache reclaims 4 idle pages after the window.
        for _ in 0..4 {
            assert_eq!(m.fc_acquire(t(2000)), FcGrant::FromIdleVm);
        }
        // Only 2 idle pages remain; the 6-page retention is gone.
        assert_eq!(m.idle_vm_pages(), 2);
        assert_eq!(m.code_hit(FileId(1), t(2001)), 0);
    }

    #[test]
    fn fc_release_returns_pages() {
        let mut m = mm(4);
        for _ in 0..4 {
            m.fc_acquire(t(0));
        }
        m.fc_release(2);
        assert_eq!(m.free_pages(), 2);
        assert_eq!(m.fc_acquire(t(1)), FcGrant::FromFree);
    }

    #[test]
    fn reserved_memory_is_untouchable() {
        let m = MemoryManager::new(
            10 * 4096,
            4 * 4096,
            4096,
            SimDuration::from_mins(20),
            SimDuration::from_mins(20),
        );
        assert_eq!(m.free_pages(), 6);
    }
}
