//! A discrete-event simulator of the Sprite distributed file system.
//!
//! This crate models the system measured by Baker et al. (SOSP 1991): a
//! cluster of diskless client workstations and a handful of file servers
//! sharing a single file hierarchy. The pieces that shaped the paper's
//! results are all here:
//!
//! * **Client block caches** ([`cache`]) — 4-Kbyte blocks, LRU
//!   replacement, and *dynamic sizing*: the file cache and the virtual
//!   memory system trade physical pages, with VM receiving preference (a
//!   VM page cannot be taken by the file cache until it has been
//!   unreferenced for 20 minutes).
//! * **Delayed writes** ([`cluster`]) — dirty blocks are written back by a
//!   daemon that runs every 5 seconds and cleans blocks once any block of
//!   the file has been dirty for 30 seconds; `fsync` forces write-through.
//! * **Cache consistency** ([`server`], [`config::ConsistencyPolicy`]) —
//!   version stamps on open, server recall of dirty data from the last
//!   writer, and cache disabling under concurrent write-sharing, plus the
//!   two alternatives the paper simulates (a modified-Sprite scheme and a
//!   token scheme) and an NFS-style polling mode.
//! * **Virtual memory paging** ([`vm`]) — code, initialized-data, and
//!   backing-file page classes; code pages are retained after exit and
//!   re-used by new invocations; backing files are never cached on
//!   clients.
//! * **Process migration** — migrated work is attributed and counted
//!   separately throughout, enabling the paper's migrated-vs-all
//!   comparisons.
//!
//! The simulator consumes a time-ordered stream of application-level
//! operations ([`ops::AppOp`], produced by `sdfs-workload`), executes them
//! against the cluster state, emits kernel-call trace records
//! (`sdfs-trace`) on the server that owns each file, and maintains the
//! per-machine counters behind Tables 4–9 of the paper.

pub mod cache;
pub mod causal;
pub mod client;
pub mod cluster;
pub mod config;
pub mod fs;
pub mod metrics;
pub mod obs;
pub mod ops;
pub mod parallel;
pub mod racecheck;
pub mod rpc;
pub mod sanitizer;
pub mod server;
pub mod vm;

pub use causal::{CausalOp, CausalTask, CausalTrace, EvAgg, SrvAgg};
pub use cluster::{Cluster, FastPathStats, TraceSink, VecSink};
pub use config::{Config, ConsistencyPolicy, FaultPlan, Partition, ServerOutage};
pub use metrics::SanitizerStats;
pub use obs::{Obs, ObsEventKind, ObsReport, SpanKind};
pub use ops::{AppOp, OpKind, PageClass};
pub use parallel::ParallelStats;
pub use racecheck::RaceStats;
