//! SpriteSan: a runtime shadow-state oracle for the cache hierarchy.
//!
//! The scorecard validates aggregate outputs against the paper; the
//! sanitizer validates the *mechanism*. When [`crate::Config::sanitize`]
//! is set, the cluster threads every cache event through a [`Sanitizer`]
//! that maintains ground truth independently of the simulated caches:
//!
//! * `truth` — the newest version of each block any application wrote;
//! * `server_ver` — the version the owning server currently holds;
//! * `held` — the version each client's cache holds for each block;
//! * `dirty_holder` — which client (if any) holds a block dirty.
//!
//! Against that state it asserts four invariants from the paper's
//! description of Sprite:
//!
//! 1. **No stale reads** under the strong policies (Sprite, modified
//!    Sprite, tokens): a cached read — hit or miss-fetch — must observe
//!    the newest written version. (Polling is exempt: stale reads are
//!    its documented trade-off, and the simulator counts them
//!    separately. Paging reads are exempt too: process faults have no
//!    open, so open-time consistency deliberately does not cover them.)
//! 2. **Single dirty holder**: at most one client caches a dirty copy
//!    of any block.
//! 3. **Write-back window**: with a 30 s delay scanned every 5 s, no
//!    block stays dirty longer than 35 s — checked after every daemon
//!    tick via the cache's dirty-age index.
//! 4. **Accounting conservation**: a client's cached-block count always
//!    equals the pages the memory manager has granted to the file
//!    cache, and (at sample points) the cache's LRU list, dirty index,
//!    per-file index, and the oracle's `held` table all agree.
//!
//! Violations never panic and never touch [`sdfs_simkit::CounterSet`]:
//! they accumulate in [`SanitizerStats`] so that a sanitized run's
//! stdout stays byte-identical to an unsanitized one.

use sdfs_simkit::{FastMap, FastSet, SimTime};
use sdfs_trace::{ClientId, FileId};

use crate::cache::BlockKey;
use crate::client::Client;
use crate::config::{Config, ConsistencyPolicy};
use crate::fs::FileTable;
use crate::metrics::SanitizerStats;

/// How a cached write left the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Delayed write: the block is dirty in the client cache.
    Dirty,
    /// Write-through (polling): the cached copy is clean and the server
    /// has the data.
    Through,
}

/// The shadow-state oracle. One per cluster, behind
/// [`crate::Config::sanitize`].
#[derive(Debug)]
pub struct Sanitizer {
    /// Newest version of each block written by any application.
    truth: FastMap<BlockKey, u64>,
    /// Version the owning server holds.
    server_ver: FastMap<BlockKey, u64>,
    /// Version known to have reached the server's *disk* — the only copy
    /// a server crash cannot destroy. Fed by the server's disk-flush
    /// event log; absent means only the preloaded (version 0) content is
    /// on disk.
    disk_ver: FastMap<BlockKey, u64>,
    /// Per-client: version of each block the client caches.
    held: Vec<FastMap<BlockKey, u64>>,
    /// The single client allowed to hold a block dirty.
    dirty_holder: FastMap<BlockKey, ClientId>,
    /// Blocks ever written, per file — lets delete/truncate erase the
    /// file's shadow state without scanning every map.
    by_file: FastMap<FileId, FastSet<u64>>,
    /// Strong consistency in force (everything but polling)?
    strong: bool,
    /// Scratch buffer for the down-server-aware write-back window scan.
    scratch_files: Vec<FileId>,
    stats: SanitizerStats,
}

impl Sanitizer {
    /// Creates the oracle for a cluster of `num_clients` under `cfg`.
    pub fn new(cfg: &Config) -> Self {
        Sanitizer {
            truth: FastMap::default(),
            server_ver: FastMap::default(),
            disk_ver: FastMap::default(),
            held: (0..cfg.num_clients).map(|_| FastMap::default()).collect(),
            dirty_holder: FastMap::default(),
            by_file: FastMap::default(),
            strong: !matches!(cfg.consistency, ConsistencyPolicy::Polling { .. }),
            scratch_files: Vec::new(),
            stats: SanitizerStats::default(),
        }
    }

    /// The accumulated verdict.
    pub fn stats(&self) -> &SanitizerStats {
        &self.stats
    }

    /// Consumes the oracle, returning the verdict.
    pub fn into_stats(self) -> SanitizerStats {
        self.stats
    }

    fn note(&mut self, counter: fn(&mut SanitizerStats) -> &mut u64, detail: String) {
        *counter(&mut self.stats) += 1;
        if self.stats.first_violation.is_none() {
            self.stats.first_violation = Some(detail);
        }
    }

    // ------------------------------------------------------------------
    // Cache-event hooks, called by the cluster.
    // ------------------------------------------------------------------

    /// A cached read hit: client `c` observed its cached copy of `key`.
    pub fn on_read_hit(&mut self, c: ClientId, key: BlockKey, paging: bool, now: SimTime) {
        self.stats.ops_checked += 1;
        if !self.strong || paging {
            return;
        }
        let truth = self.truth.get(&key).copied().unwrap_or(0);
        let held = self.held[c.raw() as usize].get(&key).copied().unwrap_or(0);
        if held < truth {
            self.note(
                |s| &mut s.stale_reads,
                format!(
                    "stale read at {now}: client {c} hit {key:?} at version {held}, newest is {truth}"
                ),
            );
        }
    }

    /// A cache miss fetched `key` from the server; `inserted` says
    /// whether the block actually entered the client cache (the VM
    /// system can refuse a page).
    pub fn on_fetch(
        &mut self,
        c: ClientId,
        key: BlockKey,
        inserted: bool,
        paging: bool,
        now: SimTime,
    ) {
        self.stats.ops_checked += 1;
        let server = self.server_ver.get(&key).copied().unwrap_or(0);
        if inserted {
            self.held[c.raw() as usize].insert(key, server);
        }
        if !self.strong || paging {
            return;
        }
        let truth = self.truth.get(&key).copied().unwrap_or(0);
        if server < truth {
            self.note(
                |s| &mut s.stale_reads,
                format!(
                    "stale fetch at {now}: client {c} fetched {key:?} at version {server}, newest is {truth}"
                ),
            );
        }
    }

    /// Client `c` wrote `key` through its cache.
    pub fn on_cached_write(&mut self, c: ClientId, key: BlockKey, kind: WriteKind, now: SimTime) {
        self.stats.ops_checked += 1;
        let v = self.truth.entry(key).or_insert(0);
        *v += 1;
        let v = *v;
        self.by_file.entry(key.file).or_default().insert(key.index);
        self.held[c.raw() as usize].insert(key, v);
        match kind {
            WriteKind::Dirty => {
                if let Some(&prev) = self.dirty_holder.get(&key) {
                    if prev != c {
                        self.note(
                            |s| &mut s.multi_dirty,
                            format!(
                                "two dirty holders at {now}: {key:?} dirty on client {prev} while client {c} dirties it"
                            ),
                        );
                    }
                }
                self.dirty_holder.insert(key, c);
            }
            WriteKind::Through => {
                self.server_ver.insert(key, v);
            }
        }
    }

    /// A write that reached the server without a cached copy: the
    /// straight-through fallback or an uncacheable (shared) write.
    pub fn on_server_write(&mut self, key: BlockKey) {
        self.stats.ops_checked += 1;
        let v = self.truth.entry(key).or_insert(0);
        *v += 1;
        let v = *v;
        self.by_file.entry(key.file).or_default().insert(key.index);
        self.server_ver.insert(key, v);
    }

    /// Client `c` wrote a dirty block back; `reached_server` is false
    /// when the write-back was cancelled (file vanished or shrank).
    pub fn on_writeback(&mut self, c: ClientId, key: BlockKey, reached_server: bool) {
        self.stats.ops_checked += 1;
        if reached_server {
            let held = self.held[c.raw() as usize].get(&key).copied().unwrap_or(0);
            self.server_ver.insert(key, held);
        }
        if self.dirty_holder.get(&key) == Some(&c) {
            self.dirty_holder.remove(&key);
        }
    }

    /// Client `c` dropped its cached copy of `key` (invalidation,
    /// eviction, delete, truncate, crash). Dirty data, if any, was
    /// either written back first (eviction) or cancelled.
    pub fn on_drop_block(&mut self, c: ClientId, key: BlockKey) {
        self.held[c.raw() as usize].remove(&key);
        if self.dirty_holder.get(&key) == Some(&c) {
            self.dirty_holder.remove(&key);
        }
    }

    /// A crash destroyed client `c`'s dirty copy of `key`: the newest
    /// data is gone, so ground truth rolls back to what the server has.
    pub fn on_crash_lost(&mut self, c: ClientId, key: BlockKey) {
        let server = self.server_ver.get(&key).copied().unwrap_or(0);
        self.truth.insert(key, server);
        if self.dirty_holder.get(&key) == Some(&c) {
            self.dirty_holder.remove(&key);
        }
    }

    /// The server wrote its cached copy of `key` to disk (delayed-write
    /// daemon or dirty eviction): the current server version becomes
    /// crash-proof. Driven by the server's disk-flush event log, which
    /// the cluster drains after every operation and daemon tick — so in
    /// rare same-operation flush-then-overwrite interleavings this can
    /// stamp a slightly newer version than actually hit the platter.
    /// That only *under*-reports crash damage (a false negative); it can
    /// never invent a violation, because crash handling below only ever
    /// lowers `truth`.
    pub fn on_server_disk_flush(&mut self, key: BlockKey) {
        let v = self.server_ver.get(&key).copied().unwrap_or(0);
        self.disk_ver.insert(key, v);
    }

    /// A server crash destroyed its volatile (not-yet-on-disk) copy of
    /// `key`. The server restarts from the disk version. Ground truth
    /// rolls back to the newest copy that still exists anywhere: the
    /// disk, or a *dirty* client copy (a clean client copy will never be
    /// written back, so it cannot restore the data for anyone else).
    pub fn on_server_crash_lost(&mut self, key: BlockKey) {
        self.stats.ops_checked += 1;
        let disk = self.disk_ver.get(&key).copied().unwrap_or(0);
        let dirty_held = self
            .dirty_holder
            .get(&key)
            .map(|c| {
                self.held[c.raw() as usize]
                    .get(&key)
                    .copied()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        let floor = disk.max(dirty_held);
        self.server_ver.insert(key, disk);
        if let Some(t) = self.truth.get_mut(&key) {
            if *t > floor {
                *t = floor;
            }
        }
    }

    /// `file` was deleted or truncated everywhere: erase its shadow
    /// state (every cached copy was already dropped via
    /// [`Sanitizer::on_drop_block`]).
    pub fn on_file_erased(&mut self, file: FileId) {
        if let Some(indices) = self.by_file.remove(&file) {
            for index in indices {
                let key = BlockKey { file, index };
                self.truth.remove(&key);
                self.server_ver.remove(&key);
                self.disk_ver.remove(&key);
                self.dirty_holder.remove(&key);
                for held in &mut self.held {
                    held.remove(&key);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Periodic checks.
    // ------------------------------------------------------------------

    /// After a daemon tick at `now`: no block may remain dirty past the
    /// write-back window (delay + one scan period). Blocks of files
    /// whose server is currently `down` are excused — the daemon queues
    /// their write-backs by design — but a down server must never mask a
    /// genuine violation on an up server, so when the oldest dirty block
    /// is excused the check falls back to a full scan of that client's
    /// overdue files.
    pub(crate) fn check_writeback_window(
        &mut self,
        clients: &[Client],
        files: &FileTable,
        down: &[bool],
        fault: Option<&crate::cluster::FaultState>,
        cfg: &Config,
        now: SimTime,
    ) {
        self.stats.ops_checked += 1;
        let cutoff = now - cfg.writeback_delay;
        // A dirty block is excused from the window when its server is
        // down *or* the client's edge to that server is cut by a
        // partition: the daemon queues the write-back either way.
        let excused = |client: &Client, file: FileId| -> bool {
            files.get(file).is_some_and(|m| {
                let si = m.server.raw() as usize;
                down.get(si) == Some(&true)
                    || fault.is_some_and(|f| f.edge_cut(client.id.raw(), si))
            })
        };
        let any_excusable =
            down.iter().any(|&d| d) || fault.is_some_and(|f| f.any_partitions());
        let mut scratch = std::mem::take(&mut self.scratch_files);
        for client in clients {
            let Some((since, key)) = client.cache.oldest_dirty() else {
                continue;
            };
            if since > cutoff {
                continue;
            }
            let mut overdue = Some((since, key));
            if any_excusable && excused(client, key.file) {
                // The O(1) witness is excused; look for an overdue block
                // on a reachable up server the slow way.
                overdue = None;
                client.cache.files_with_dirty_before_into(cutoff, &mut scratch);
                for &file in &scratch {
                    if !excused(client, file) {
                        overdue = Some((since, BlockKey { file, index: 0 }));
                        break;
                    }
                }
            }
            if let Some((since, key)) = overdue {
                let c = client.id;
                self.note(
                    |s| &mut s.writeback_window,
                    format!(
                        "write-back window missed at {now}: client {c} still holds {key:?} dirty since {since}"
                    ),
                );
            }
        }
        scratch.clear();
        self.scratch_files = scratch;
    }

    /// O(1) per-operation conservation check: the cache holds exactly
    /// the pages the memory manager granted to the file cache.
    pub fn check_page_accounting(&mut self, client: &Client, now: SimTime) {
        self.stats.ops_checked += 1;
        let cached = client.cache.len() as u64;
        let granted = client.mem.fc_pages();
        if cached != granted {
            let c = client.id;
            self.note(
                |s| &mut s.accounting,
                format!(
                    "page accounting at {now}: client {c} caches {cached} blocks but holds {granted} file-cache pages"
                ),
            );
        }
    }

    /// Deep audit, run at sample points: the cache's internal indexes
    /// must be mutually consistent and the oracle's `held` table must
    /// mirror reality exactly.
    pub fn deep_audit(&mut self, clients: &[Client], now: SimTime) {
        self.stats.ops_checked += 1;
        for client in clients {
            let c = client.id;
            if let Err(problem) = client.cache.audit() {
                self.note(
                    |s| &mut s.accounting,
                    format!("cache index audit at {now}: client {c}: {problem}"),
                );
            }
            let held = &self.held[c.raw() as usize];
            if held.len() != client.cache.len() {
                let (h, l) = (held.len(), client.cache.len());
                self.note(
                    |s| &mut s.accounting,
                    format!(
                        "oracle drift at {now}: client {c} caches {l} blocks, oracle tracks {h}"
                    ),
                );
                continue;
            }
            for key in held.keys() {
                if !client.cache.contains(*key) {
                    self.note(
                        |s| &mut s.accounting,
                        format!(
                            "oracle drift at {now}: client {c} oracle holds {key:?} not in cache"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, index: u64) -> BlockKey {
        BlockKey {
            file: FileId(file),
            index,
        }
    }

    fn sanitizer() -> Sanitizer {
        Sanitizer::new(&Config::small())
    }

    #[test]
    fn clean_write_read_cycle_passes() {
        let mut s = sanitizer();
        let c = ClientId(0);
        s.on_cached_write(c, key(1, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_read_hit(c, key(1, 0), false, SimTime::ZERO);
        s.on_writeback(c, key(1, 0), true);
        s.on_drop_block(c, key(1, 0));
        let other = ClientId(1);
        s.on_fetch(other, key(1, 0), true, false, SimTime::ZERO);
        s.on_read_hit(other, key(1, 0), false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());
    }

    #[test]
    fn stale_hit_detected() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        // b caches version 1, a writes version 2, b reads its old copy
        // without invalidation.
        s.on_cached_write(b, key(1, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_writeback(b, key(1, 0), true);
        s.on_cached_write(a, key(1, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_read_hit(b, key(1, 0), false, SimTime::ZERO);
        assert_eq!(s.stats().stale_reads, 1);
        assert!(s.stats().first_violation.is_some());
    }

    #[test]
    fn stale_fetch_detected() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        // a holds dirty data the server never saw; b fetches from the
        // server and misses it.
        s.on_cached_write(a, key(2, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_fetch(b, key(2, 0), true, false, SimTime::ZERO);
        assert_eq!(s.stats().stale_reads, 1);
    }

    #[test]
    fn paging_and_polling_reads_exempt() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        s.on_cached_write(a, key(3, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_fetch(b, key(3, 0), true, true, SimTime::ZERO); // paging
        assert!(s.stats().is_clean());

        let mut cfg = Config::small();
        cfg.consistency = ConsistencyPolicy::Polling { interval_secs: 3 };
        let mut s = Sanitizer::new(&cfg);
        s.on_cached_write(a, key(3, 0), WriteKind::Through, SimTime::ZERO);
        s.on_cached_write(a, key(3, 0), WriteKind::Through, SimTime::ZERO);
        s.on_read_hit(b, key(3, 0), false, SimTime::ZERO);
        assert!(s.stats().is_clean());
    }

    #[test]
    fn double_dirty_detected() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        s.on_cached_write(a, key(4, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_cached_write(b, key(4, 0), WriteKind::Dirty, SimTime::ZERO);
        assert_eq!(s.stats().multi_dirty, 1);
    }

    #[test]
    fn crash_rolls_truth_back() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        s.on_cached_write(a, key(5, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_writeback(a, key(5, 0), true); // server at v1
        s.on_cached_write(a, key(5, 0), WriteKind::Dirty, SimTime::ZERO); // v2 dirty
        s.on_crash_lost(a, key(5, 0));
        s.on_drop_block(a, key(5, 0));
        // b reads from the server: v1 is now the newest surviving data.
        s.on_fetch(b, key(5, 0), true, false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());
    }

    #[test]
    fn server_crash_rolls_back_to_disk_version() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        // v1 reaches the disk; v2 only reaches the server's volatile cache.
        s.on_cached_write(a, key(7, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_writeback(a, key(7, 0), true);
        s.on_server_disk_flush(key(7, 0));
        s.on_cached_write(a, key(7, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_writeback(a, key(7, 0), true);
        s.on_drop_block(a, key(7, 0));
        s.on_server_crash_lost(key(7, 0));
        // v2 is gone; the disk's v1 is the newest surviving data, so a
        // fetch of it is not stale.
        s.on_fetch(b, key(7, 0), true, false, SimTime::ZERO);
        s.on_read_hit(b, key(7, 0), false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());
    }

    #[test]
    fn dirty_client_copy_survives_server_crash() {
        let mut s = sanitizer();
        let (a, b) = (ClientId(0), ClientId(1));
        // a holds v1 dirty; the server has nothing on disk. A server
        // crash destroys nothing a cares about — a's dirty copy is still
        // the newest data and will be written back.
        s.on_cached_write(a, key(8, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_server_crash_lost(key(8, 0));
        s.on_writeback(a, key(8, 0), true);
        s.on_drop_block(a, key(8, 0));
        s.on_fetch(b, key(8, 0), true, false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());

        // But if the server's only copy was newer than the disk and no
        // client holds it dirty, a fetch after the crash IS outdated —
        // and must NOT be flagged, because truth rolled back with it.
        s.on_server_write(key(9, 0)); // v1, server cache only
        s.on_server_crash_lost(key(9, 0));
        s.on_fetch(b, key(9, 0), true, false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());
    }

    #[test]
    fn erased_file_forgets_versions() {
        let mut s = sanitizer();
        let a = ClientId(0);
        s.on_cached_write(a, key(6, 0), WriteKind::Dirty, SimTime::ZERO);
        s.on_drop_block(a, key(6, 0));
        s.on_file_erased(FileId(6));
        // Recreated file starts fresh; a fetch of version 0 is fine.
        s.on_fetch(a, key(6, 0), true, false, SimTime::ZERO);
        assert!(s.stats().is_clean(), "{:?}", s.stats());
    }
}
