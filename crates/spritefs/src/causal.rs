//! CausalProf: deterministic causal tracing of the parallel engine.
//!
//! Off-by-default ([`crate::Config::causal`]) recording layer that turns
//! one simulated run into an explicit dependency DAG keyed by the same
//! global dispatch ids the parallel engine already stamps on every task
//! and deferred server event ([`crate::parallel`]):
//!
//! * **Coordinator ops** — every control-plane RPC the coordinator walks
//!   ([`CausalOp`]), in global operation order, weighted by the modeled
//!   network time of its payload. These form the serial chain of the DAG.
//! * **Task dispatches** — every data-plane [`ClientTask`] hand-off
//!   ([`CausalTask`]), stamped with its dispatch id and with how many
//!   coordinator ops preceded it (the op → task dependency edge).
//! * **Server events** — deferred server-cache effects, aggregated per
//!   dispatch id ([`EvAgg`], the task → replay edge) and per server
//!   ([`SrvAgg`], the replay-merge lanes).
//!
//! Everything is recorded on the coordinator thread. Under the
//! sequential engine, per-task server events are captured by a
//! [`CausalSrv`] wrapper around the inline [`ServerAccess`]; under the
//! parallel engine the workers' per-shard event buffers (which this
//! layer never touches — PlaneCheck owns that invariant) are folded in
//! by the coordinator after the join. Because the coordinator walks
//! operations in the same order in both engines and the dispatch-id
//! counter here is bumped at exactly the chokepoints that bump
//! [`crate::parallel::QueuedState`]'s, the recorded trace is
//! byte-identical at any thread count — the property `scripts/verify.sh`
//! gates with `cmp` on the Perfetto export.
//!
//! Weights are *modeled sim time*, not wall clock: an op costs
//! `net.rpc_time(bytes)`; a task costs a small per-task base plus a
//! per-block term for client-cache handling; a replayed server event
//! costs `net.rpc_time(bytes)` of server-side service. Disk hit/miss is
//! deliberately ignored: under `Route::Queued` the inline hit flag is a
//! placeholder (see [`crate::cluster`]), so any weight derived from it
//! would differ across engines and break the byte-identity contract.

use crate::cluster::ServerAccess;
use crate::config::Config;
use crate::parallel::ClientTask;
use crate::racecheck::{guard, Resource};
use crate::rpc::RpcKind;
use sdfs_simkit::SimTime;

use crate::cache::BlockKey;

/// Maximum sub-tasks per dispatch round, re-exported for analysis-side
/// round reconstruction (single source of truth in [`crate::parallel`]).
pub const ROUND_CAP: usize = crate::parallel::ROUND_CAP;

/// Modeled client-side cost of executing one data-plane task,
/// independent of size: queue hand-off, cache lookup, bookkeeping.
pub const TASK_BASE_US: u64 = 20;

/// Modeled client-side cost per 4K-block moved through the client
/// cache by a task.
pub const TASK_PER_BLOCK_US: u64 = 5;

/// Human names of the [`ClientTask`] variants, indexed by the code
/// recorded in [`CausalTask::kind`].
pub const TASK_NAMES: [&str; 9] = [
    "read",
    "write",
    "flush.file",
    "invalidate",
    "drop.file",
    "proc.start",
    "proc.exit",
    "daemon.flush",
    "sample",
];

/// One coordinator control-plane RPC, in global operation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalOp {
    /// [`RpcKind`] index (see [`RpcKind::ALL`]).
    pub kind: u8,
    /// Modeled network time of the RPC in microseconds.
    pub cost_us: u64,
}

/// One data-plane task dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalTask {
    /// Global dispatch id (shared with server events).
    pub id: u64,
    /// Owning client.
    pub ci: u16,
    /// [`ClientTask`] variant code (index into [`TASK_NAMES`]).
    pub kind: u8,
    /// Payload bytes the task moves through the client cache.
    pub bytes: u64,
    /// Coordinator ops recorded before this dispatch — the op → task
    /// dependency edge (the task cannot start before the coordinator
    /// has walked this far).
    pub ops_before: u64,
    /// Modeled client-side execution cost in microseconds.
    pub cost_us: u64,
}

/// Server-event aggregate for one dispatch id (task → replay edge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvAgg {
    /// Deferred server-cache events charged to this id.
    pub events: u32,
    /// Payload bytes across those events.
    pub bytes: u64,
    /// Modeled server-side service time in microseconds.
    pub cost_us: u64,
}

/// Replay-lane aggregate for one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrvAgg {
    /// Events replayed against this server's cache.
    pub events: u64,
    /// Payload bytes across those events.
    pub bytes: u64,
    /// Modeled service time of the server's replay lane in microseconds.
    pub cost_us: u64,
}

/// The per-run causal DAG, recorded on the coordinator.
///
/// The struct is coordinator-owned state in the PlaneCheck sense: the
/// static analyzer forbids any worker-plane function from reaching it,
/// and every recording method calls the runtime plane
/// [`guard`](crate::racecheck::guard) so `--racecheck` re-proves the
/// same rule while the parallel engine runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalTrace {
    /// Coordinator control-plane RPCs, in global operation order.
    pub ops: Vec<CausalOp>,
    /// Data-plane task dispatches, in dispatch order.
    pub tasks: Vec<CausalTask>,
    /// Server-event aggregates indexed by dispatch id (may be shorter
    /// than the id space; use [`CausalTrace::events_of`]).
    pub by_id: Vec<EvAgg>,
    /// Per-server replay-lane aggregates.
    pub srv: Vec<SrvAgg>,
    /// Mirror of the global dispatch-id counter: bumped at exactly the
    /// chokepoints that bump `QueuedState::next_id`, so recorded ids
    /// match the engine's at any thread count.
    next_id: u64,
    per_rpc_us: u64,
    per_byte_ns: u64,
    block_size: u64,
}

impl CausalTrace {
    /// Creates an empty trace using `cfg`'s latency model for weights.
    pub fn new(cfg: &Config) -> Self {
        CausalTrace {
            ops: Vec::new(),
            tasks: Vec::new(),
            by_id: Vec::new(),
            srv: vec![SrvAgg::default(); cfg.num_servers as usize],
            next_id: 0,
            per_rpc_us: cfg.net.per_rpc_us,
            per_byte_ns: cfg.net.per_byte_ns,
            block_size: cfg.block_size.max(1),
        }
    }

    /// Modeled network/service time for a `bytes` payload, in µs.
    #[inline]
    fn net_us(&self, bytes: u64) -> u64 {
        self.per_rpc_us + bytes * self.per_byte_ns / 1000
    }

    /// The server-event aggregate charged to dispatch id `id`.
    pub fn events_of(&self, id: u64) -> EvAgg {
        self.by_id.get(id as usize).copied().unwrap_or_default()
    }

    /// Total modeled replay time across all server lanes, in µs.
    pub fn replay_total_us(&self) -> u64 {
        self.srv.iter().map(|s| s.cost_us).sum()
    }

    /// Records one coordinator control-plane RPC.
    #[inline]
    pub(crate) fn rpc(&mut self, kind: RpcKind, bytes: u64) {
        guard(Resource::CausalTrace);
        self.ops.push(CausalOp {
            kind: kind.index() as u8,
            cost_us: self.net_us(bytes),
        });
    }

    /// Records one task dispatch and returns its global dispatch id.
    #[inline]
    pub(crate) fn task(&mut self, ci: usize, task: &ClientTask) -> u64 {
        guard(Resource::CausalTrace);
        let id = self.next_id;
        self.next_id += 1;
        let (kind, bytes) = task_code_bytes(task);
        self.tasks.push(CausalTask {
            id,
            ci: ci as u16,
            kind,
            bytes,
            ops_before: self.ops.len() as u64,
            cost_us: TASK_BASE_US + bytes.div_ceil(self.block_size) * TASK_PER_BLOCK_US,
        });
        id
    }

    /// Records one control-plane server event (paging, server daemon
    /// ticks), claiming the next dispatch id. `apply` is true on the
    /// inline path, where the effect happens now; the queued path folds
    /// the effect in later via [`CausalTrace::record_event`] so it is
    /// counted exactly once either way.
    #[inline]
    pub(crate) fn coord_event(&mut self, si: usize, bytes: u64, apply: bool) {
        guard(Resource::CausalTrace);
        let id = self.next_id;
        self.next_id += 1;
        if apply {
            self.record_event(id, si, bytes);
        }
    }

    /// Charges one deferred server-cache event to dispatch id `id` and
    /// server `si`. Aggregation is pure integer addition, so fold order
    /// does not matter — the parallel engine feeds this from per-shard
    /// event buffers after the join and still matches the sequential
    /// engine byte for byte.
    #[inline]
    pub(crate) fn record_event(&mut self, id: u64, si: usize, bytes: u64) {
        guard(Resource::CausalTrace);
        let idx = id as usize;
        if idx >= self.by_id.len() {
            self.by_id.resize(idx + 1, EvAgg::default());
        }
        let cost = self.net_us(bytes);
        let agg = &mut self.by_id[idx];
        agg.events += 1;
        agg.bytes += bytes;
        agg.cost_us += cost;
        let s = &mut self.srv[si];
        s.events += 1;
        s.bytes += bytes;
        s.cost_us += cost;
    }
}

/// Variant code and payload bytes of a [`ClientTask`].
fn task_code_bytes(task: &ClientTask) -> (u8, u64) {
    match *task {
        ClientTask::Read { len, .. } => (0, len),
        ClientTask::Write { len, .. } => (1, len),
        ClientTask::FlushFile { .. } => (2, 0),
        ClientTask::Invalidate { .. } => (3, 0),
        ClientTask::DropFile { .. } => (4, 0),
        ClientTask::ProcStart {
            code_bytes,
            data_bytes,
            heap_bytes,
            ..
        } => (5, code_bytes + data_bytes + heap_bytes),
        ClientTask::ProcExit { .. } => (6, 0),
        ClientTask::DaemonFlush { .. } => (7, 0),
        ClientTask::Sample { .. } => (8, 0),
    }
}

/// Inline [`ServerAccess`] wrapper that charges each server-cache
/// effect to the current task's dispatch id before delegating. The
/// sequential twin of the workers' per-shard event buffers.
pub(crate) struct CausalSrv<'a, A> {
    /// The real inline access.
    pub inner: A,
    /// The trace, when recording.
    pub causal: Option<&'a mut CausalTrace>,
    /// The current task's global dispatch id.
    pub id: u64,
}

// plane:coordinator-only — the inline path runs on the coordinator
// thread only; shard workers always get the deferred `EventLog`.
impl<A: ServerAccess> ServerAccess for CausalSrv<'_, A> {
    fn serve_read(&mut self, si: usize, key: BlockKey, bytes: u64, now: SimTime) -> bool {
        if let Some(c) = self.causal.as_deref_mut() {
            c.record_event(self.id, si, bytes);
        }
        self.inner.serve_read(si, key, bytes, now)
    }

    fn accept_write(&mut self, si: usize, key: BlockKey, bytes: u64, now: SimTime) {
        if let Some(c) = self.causal.as_deref_mut() {
            c.record_event(self.id, si, bytes);
        }
        self.inner.accept_write(si, key, bytes, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::racecheck::{install, uninstall, Plane};

    fn trace() -> CausalTrace {
        CausalTrace::new(&Config::default())
    }

    #[test]
    fn ids_mirror_dispatch_counter() {
        let mut t = trace();
        let id0 = t.task(0, &ClientTask::ProcExit { pid: sdfs_trace::Pid(1) });
        t.coord_event(0, 4096, true);
        let id2 = t.task(1, &ClientTask::Sample { active: true });
        assert_eq!((id0, id2), (0, 2));
        assert_eq!(t.tasks.len(), 2);
        assert_eq!(t.events_of(1).events, 1);
    }

    #[test]
    fn event_aggregation_is_order_insensitive() {
        let mut a = trace();
        a.record_event(3, 0, 4096);
        a.record_event(1, 1, 100);
        a.record_event(3, 0, 4096);
        let mut b = trace();
        b.record_event(3, 0, 4096);
        b.record_event(3, 0, 4096);
        b.record_event(1, 1, 100);
        assert_eq!(a.events_of(3), b.events_of(3));
        assert_eq!(a.srv, b.srv);
    }

    #[test]
    fn worker_plane_touch_is_a_runtime_violation() {
        // The dynamic twin of the static PlaneCheck fixture: a shard
        // worker reaching the coordinator-owned causal trace must trip
        // the plane guard under --racecheck.
        let mut t = trace();
        install(Plane::Worker(3));
        t.record_event(0, 0, 512);
        let (checks, violations, first) = uninstall();
        assert_eq!(checks, 1);
        assert_eq!(violations, 1);
        let msg = first.expect("violation recorded");
        assert!(msg.contains("worker 3"), "{msg}");
        // The same touch from the coordinator plane is clean.
        install(Plane::Coordinator);
        t.record_event(0, 0, 512);
        let (checks, violations, _) = uninstall();
        assert_eq!((checks, violations), (1, 0));
    }
}
