//! Equivalence tests for the epoch-guarded consistency fast path.
//!
//! The fast path must be a pure optimization: with
//! `consistency_fast_path` on or off, every trace record, every
//! counter, and every sanitizer verdict must be identical under every
//! consistency policy — including under conflict storms that thrash
//! the calm summaries with write-sharing flips, truncates, deletes,
//! client restarts, and server crashes. These tests drive the same op
//! stream through both configurations and compare the complete
//! observable state.

use sdfs_simkit::{CounterSet, SimDuration, SimRng, SimTime};
use sdfs_spritefs::metrics::SanitizerStats;
use sdfs_spritefs::{
    AppOp, Cluster, Config, ConsistencyPolicy, FastPathStats, OpKind, VecSink,
};
use sdfs_trace::{ClientId, FileId, Handle, OpenMode, Pid, Record, ServerId, UserId};

const POLICIES: [ConsistencyPolicy; 4] = [
    ConsistencyPolicy::Sprite,
    ConsistencyPolicy::SpriteModified,
    ConsistencyPolicy::Token,
    ConsistencyPolicy::Polling { interval_secs: 10 },
];

/// Cluster-level events that are not application ops, fired just before
/// the op at the given index.
#[derive(Debug, Clone, Copy)]
enum Shock {
    ClientCrash(u16),
    ServerCrash,
    ServerRecover,
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Outcome {
    records: Vec<Vec<Record>>,
    client_counters: Vec<CounterSet>,
    server_counters: Vec<CounterSet>,
    sanitizer: Option<SanitizerStats>,
}

fn run_stream(
    policy: ConsistencyPolicy,
    fast: bool,
    sanitize: bool,
    num_clients: u16,
    ops: &[AppOp],
    shocks: &[(usize, Shock)],
) -> (Outcome, FastPathStats) {
    let mut cfg = Config::small();
    cfg.consistency = policy;
    cfg.consistency_fast_path = fast;
    cfg.sanitize = sanitize;
    cfg.num_clients = num_clients;
    let num_servers = cfg.num_servers;
    let mut cluster = Cluster::new(cfg, VecSink::new(num_servers));
    let mut shock_i = 0;
    for (i, op) in ops.iter().enumerate() {
        while shock_i < shocks.len() && shocks[shock_i].0 == i {
            match shocks[shock_i].1 {
                Shock::ClientCrash(c) => {
                    cluster.crash_client(ClientId(c));
                }
                Shock::ServerCrash => {
                    cluster.crash_server(ServerId(0));
                }
                Shock::ServerRecover => {
                    cluster.recover_server(ServerId(0));
                }
            }
            shock_i += 1;
        }
        cluster.apply(op);
    }
    // Bring the server back and drain the write-back daemon so delayed
    // writes land in the record stream.
    cluster.recover_server(ServerId(0));
    let end = cluster.now() + SimDuration::from_secs(120);
    cluster.run(std::iter::empty(), end);
    let fp = cluster.fastpath_stats();
    let sanitizer = cluster.take_sanitizer_stats();
    let client_counters = cluster
        .clients()
        .iter()
        .map(|c| c.metrics.counters.clone())
        .collect();
    let server_counters = cluster
        .servers()
        .iter()
        .map(|s| s.counters.clone())
        .collect();
    let records = cluster.into_sink().per_server;
    (
        Outcome {
            records,
            client_counters,
            server_counters,
            sanitizer,
        },
        fp,
    )
}

fn mk(t: u64, client: u16, kind: OpKind) -> AppOp {
    AppOp {
        time: SimTime::from_micros(t * 500),
        client: ClientId(client),
        user: UserId(client as u32),
        pid: Pid(1),
        migrated: false,
        kind,
    }
}

/// A deterministic mixed stream: calm single-client reopen traffic
/// (where the fast path should hit) plus enough cross-client sharing,
/// truncates, and deletes to exercise the slow path and the epoch
/// bumps.
fn mixed_stream() -> Vec<AppOp> {
    let mut ops = Vec::new();
    let mut t = 0u64;
    let mut tick = || {
        t += 1;
        t
    };
    for f in 0..8u64 {
        ops.push(mk(tick(), 0, OpKind::Create { file: FileId(f), is_dir: false }));
    }
    let mut fd = 1u64;
    // Calm phase: client 1 re-reads file 0 repeatedly.
    for _ in 0..200 {
        let h = Handle(fd);
        fd += 1;
        ops.push(mk(tick(), 1, OpKind::Open { fd: h, file: FileId(0), mode: OpenMode::Read }));
        ops.push(mk(tick(), 1, OpKind::Read { fd: h, len: 4096 }));
        ops.push(mk(tick(), 1, OpKind::Close { fd: h }));
    }
    // Temp-file phase: client 2 creates, writes, deletes private files.
    for i in 0..100u64 {
        let file = FileId(100 + i);
        let h = Handle(fd);
        fd += 1;
        ops.push(mk(tick(), 2, OpKind::Create { file, is_dir: false }));
        ops.push(mk(tick(), 2, OpKind::Open { fd: h, file, mode: OpenMode::Write }));
        ops.push(mk(tick(), 2, OpKind::Write { fd: h, len: 2048 }));
        ops.push(mk(tick(), 2, OpKind::Close { fd: h }));
        ops.push(mk(tick(), 2, OpKind::Delete { file }));
    }
    // Sharing phase: clients 0 and 3 alternate writes to file 1 (forces
    // recalls / cache disable / token revocation depending on policy),
    // then client 1 reads it back.
    for round in 0..50 {
        for c in [0u16, 3] {
            let h = Handle(fd);
            fd += 1;
            ops.push(mk(tick(), c, OpKind::Open { fd: h, file: FileId(1), mode: OpenMode::Write }));
            ops.push(mk(tick(), c, OpKind::Write { fd: h, len: 4096 }));
            ops.push(mk(tick(), c, OpKind::Close { fd: h }));
        }
        if round % 10 == 0 {
            ops.push(mk(tick(), 0, OpKind::Truncate { file: FileId(2) }));
        }
        let h = Handle(fd);
        fd += 1;
        ops.push(mk(tick(), 1, OpKind::Open { fd: h, file: FileId(1), mode: OpenMode::Read }));
        ops.push(mk(tick(), 1, OpKind::Read { fd: h, len: 4096 }));
        ops.push(mk(tick(), 1, OpKind::Close { fd: h }));
    }
    ops
}

/// Fast path on and off produce byte-identical observable state under
/// every consistency policy, and the fast path actually fires where it
/// should.
#[test]
fn fastpath_is_byte_identical_across_policies() {
    let ops = mixed_stream();
    for policy in POLICIES {
        let (on, fp_on) = run_stream(policy, true, true, 4, &ops, &[]);
        let (off, fp_off) = run_stream(policy, false, true, 4, &ops, &[]);
        assert_eq!(on, off, "fast path changed observable state under {policy:?}");
        assert_eq!(
            fp_off.hits(),
            0,
            "fast path fired with the toggle off under {policy:?}"
        );
        assert!(
            fp_on.hits() > 0,
            "fast path never fired on calm traffic under {policy:?}"
        );
        // The calm reopen phase alone should give the sprite family a
        // substantial hit rate.
        if matches!(policy, ConsistencyPolicy::Sprite | ConsistencyPolicy::SpriteModified) {
            assert!(
                fp_on.hit_rate_pct() > 30.0,
                "unexpectedly low hit rate {:.1}% under {policy:?}",
                fp_on.hit_rate_pct()
            );
        }
        // The sanitizer ran and saw nothing under the strong policies.
        let san = on.sanitizer.expect("sanitizer enabled");
        assert!(san.ops_checked > 0);
        if !matches!(policy, ConsistencyPolicy::Polling { .. }) {
            assert_eq!(san.stale_reads, 0, "stale read under {policy:?}");
            assert_eq!(san.multi_dirty, 0);
            assert_eq!(san.accounting, 0);
        }
    }
}

/// A seeded conflict storm: rapid write-sharing flips with truncates,
/// deletes, client restarts, and server crash/recovery mixed in. The
/// epoch guard must never let a stale calm summary leak a fast-path
/// decision — proven by exact equality with the slow path, which
/// re-derives every decision from first principles.
#[test]
fn conflict_storm_never_admits_stale_decisions() {
    for seed in [3u64, 17, 99] {
        let (ops, shocks) = storm_stream(seed, 400);
        for policy in POLICIES {
            let (on, fp_on) = run_stream(policy, true, true, 8, &ops, &shocks);
            let (off, _) = run_stream(policy, false, true, 8, &ops, &shocks);
            assert_eq!(
                on, off,
                "storm divergence: seed {seed} policy {policy:?} (hits {} misses {})",
                fp_on.hits(),
                fp_on.misses()
            );
        }
    }
}

/// Generates one storm: 8 clients, 6 hot files, `rounds` bursts chosen
/// by the workspace's deterministic [`SimRng`].
fn storm_stream(seed: u64, rounds: usize) -> (Vec<AppOp>, Vec<(usize, Shock)>) {
    let mut rng = SimRng::seed_from_u64(seed);
    let n_files = 6u64;
    let mut ops = Vec::new();
    let mut shocks = Vec::new();
    let mut t = 0u64;
    let tick = |t: &mut u64| {
        *t += 1;
        *t
    };
    let mut exists = [true; 6];
    for f in 0..n_files {
        ops.push(mk(tick(&mut t), 0, OpKind::Create { file: FileId(f), is_dir: false }));
    }
    let mut fd = 1u64;
    let mut server_up = true;
    for _ in 0..rounds {
        match rng.below(12) {
            0..=3 => {
                // Write-share flip: two clients write the same file
                // back to back.
                let f = rng.below(n_files);
                if !exists[f as usize] {
                    continue;
                }
                for _ in 0..2 {
                    let c = rng.below(8) as u16;
                    let h = Handle(fd);
                    fd += 1;
                    ops.push(mk(tick(&mut t), c, OpKind::Open { fd: h, file: FileId(f), mode: OpenMode::Write }));
                    ops.push(mk(tick(&mut t), c, OpKind::Write { fd: h, len: 4096 + rng.below(8192) }));
                    ops.push(mk(tick(&mut t), c, OpKind::Close { fd: h }));
                }
            }
            4..=7 => {
                // Calm burst: one client re-reads a file a few times —
                // the storm interleaves calm periods so the fast path
                // keeps re-arming and must keep re-invalidating.
                let c = rng.below(8) as u16;
                let f = rng.below(n_files);
                if !exists[f as usize] {
                    continue;
                }
                for _ in 0..3 {
                    let h = Handle(fd);
                    fd += 1;
                    ops.push(mk(tick(&mut t), c, OpKind::Open { fd: h, file: FileId(f), mode: OpenMode::Read }));
                    ops.push(mk(tick(&mut t), c, OpKind::Read { fd: h, len: 4096 }));
                    ops.push(mk(tick(&mut t), c, OpKind::Close { fd: h }));
                }
            }
            8 => {
                let f = rng.below(n_files);
                if exists[f as usize] {
                    ops.push(mk(tick(&mut t), 0, OpKind::Truncate { file: FileId(f) }));
                }
            }
            9 => {
                let f = rng.below(n_files);
                if exists[f as usize] {
                    ops.push(mk(tick(&mut t), 0, OpKind::Delete { file: FileId(f) }));
                    exists[f as usize] = false;
                } else {
                    ops.push(mk(tick(&mut t), 0, OpKind::Create { file: FileId(f), is_dir: false }));
                    exists[f as usize] = true;
                }
            }
            10 => {
                shocks.push((ops.len(), Shock::ClientCrash(rng.below(8) as u16)));
            }
            _ => {
                if server_up {
                    shocks.push((ops.len(), Shock::ServerCrash));
                } else {
                    shocks.push((ops.len(), Shock::ServerRecover));
                }
                server_up = !server_up;
            }
        }
    }
    (ops, shocks)
}
