//! Integration tests for the fault subsystem: network partitions, the
//! lease protocol, and their interaction with crashes. Everything here
//! is seeded through the workspace `SimRng`, so the suite is hermetic.

use sdfs_simkit::{SimDuration, SimRng, SimTime};
use sdfs_spritefs::metrics::fault;
use sdfs_spritefs::{
    AppOp, Cluster, Config, ConsistencyPolicy, FaultPlan, OpKind, Partition, ServerOutage, VecSink,
};
use sdfs_trace::{ClientId, FileId, Handle, OpenMode, Pid, Record, UserId};

/// Builds a deterministic, well-formed op script: opens, reads, writes,
/// closes, and the occasional fsync across `num_clients` clients and a
/// small shared file set, one op every 250 ms. Small file ids collide
/// across clients, so the script exercises sharing and recalls — the
/// paths partitions gate.
fn op_script(seed: u64, steps: u64, num_clients: u16) -> Vec<AppOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    // (fd, writable): writes and fsyncs only target writable handles,
    // so the consistency protocol always sees the write intent and the
    // oracle's multi-dirty check holds on the baseline.
    let mut live: Vec<Vec<(Handle, bool)>> = vec![Vec::new(); num_clients as usize];
    let mut exists = [false; 8];
    let mut next_fd = 1u64;
    for t in 1..=steps {
        let now = SimTime::from_millis(t * 250);
        let c = rng.below(num_clients as u64) as u16;
        let mk = |kind| AppOp {
            time: now,
            client: ClientId(c),
            user: UserId(c as u32),
            pid: Pid(0),
            migrated: false,
            kind,
        };
        match rng.below(10) {
            0 => {
                let f = rng.below(8);
                ops.push(mk(OpKind::Create {
                    file: FileId(f),
                    is_dir: false,
                }));
                exists[f as usize] = true;
            }
            1 | 2 => {
                let f = rng.below(8);
                if exists[f as usize] {
                    let fd = Handle(next_fd);
                    next_fd += 1;
                    let mode = match rng.below(3) {
                        0 => OpenMode::Read,
                        1 => OpenMode::Write,
                        _ => OpenMode::ReadWrite,
                    };
                    ops.push(mk(OpKind::Open {
                        fd,
                        file: FileId(f),
                        mode,
                    }));
                    live[c as usize].push((fd, mode != OpenMode::Read));
                }
            }
            3..=5 => {
                if let Some(&(fd, _)) = live[c as usize].last() {
                    ops.push(mk(OpKind::Read {
                        fd,
                        len: rng.range(1, 50_000),
                    }));
                }
            }
            6 | 7 => {
                if let Some(&(fd, true)) = live[c as usize].last() {
                    ops.push(mk(OpKind::Write {
                        fd,
                        len: rng.range(1, 50_000),
                    }));
                }
            }
            8 => {
                if let Some(&(fd, true)) = live[c as usize].last() {
                    ops.push(mk(OpKind::Fsync { fd }));
                }
            }
            _ => {
                if let Some((fd, _)) = live[c as usize].pop() {
                    ops.push(mk(OpKind::Close { fd }));
                }
            }
        }
    }
    ops
}

/// Runs `script` on a fresh cluster and returns the emitted trace
/// records, every counter of every machine (canonically ordered), and
/// whether the sanitizer (if enabled) came back clean.
type ScriptOutcome = (
    Vec<Vec<Record>>,
    Vec<(&'static str, u64)>,
    Option<sdfs_spritefs::SanitizerStats>,
);

fn run_script(cfg: Config, script: &[AppOp], end: SimTime) -> ScriptOutcome {
    let sink = VecSink::new(cfg.num_servers);
    let mut cl = Cluster::new(cfg, sink);
    for op in script {
        cl.apply(op);
    }
    cl.run(std::iter::empty(), end);
    let mut counters: Vec<(&'static str, u64)> = Vec::new();
    for c in cl.clients() {
        counters.extend(c.metrics.counters.iter());
    }
    for s in cl.servers() {
        counters.extend(s.counters.iter());
    }
    counters.sort_unstable();
    let san = cl.take_sanitizer_stats();
    (cl.into_sink().per_server, counters, san)
}

fn partition_plan(conservative: bool) -> FaultPlan {
    FaultPlan {
        partitions: vec![Partition {
            at: SimTime::from_secs(30),
            heal_after: SimDuration::from_secs(60),
            edges: vec![(0, 0), (1, 0)],
        }],
        lease_ttl: SimDuration::from_secs(10),
        conservative_recovery: conservative,
        ..FaultPlan::default()
    }
}

/// Same seed, same partition plan: two runs are byte-identical, and the
/// partition actually bit (edges cut, RPCs stalled) while the oracle
/// stayed clean across the cut, the revocations, and the heal.
#[test]
fn partitioned_day_is_byte_identical_across_runs() {
    let script = op_script(0x504c_414e, 600, 4);
    let end = SimTime::from_secs(300);
    let mut cfg = Config::small();
    cfg.sanitize = true;
    cfg.faults = Some(partition_plan(false));
    let (rec_a, cnt_a, san_a) = run_script(cfg.clone(), &script, end);
    let (rec_b, cnt_b, _) = run_script(cfg, &script, end);
    assert_eq!(rec_a, rec_b, "same seed, same plan: identical records");
    assert_eq!(cnt_a, cnt_b, "same seed, same plan: identical counters");
    let san = san_a.expect("sanitized run");
    assert!(
        san.is_clean(),
        "oracle clean across the partition: {}",
        san.render()
    );
    let total = |key: &str| -> u64 {
        cnt_a
            .iter()
            .filter(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
            .sum()
    };
    assert_eq!(total(fault::PART_CUT_EDGES), 2, "both edges were cut");
    assert!(total(fault::PART_CUT_US) > 0, "cut time accumulated");
    assert!(
        total(fault::PART_STALLED_RPCS) > 0,
        "cut clients kept issuing RPCs"
    );
}

/// An inert plan — faults enabled, but no outages, no partitions, no
/// drops — moves nothing: records and every counter are identical to a
/// run with the fault machinery compiled out of the configuration.
#[test]
fn inert_plan_leaves_every_counter_alone() {
    let script = op_script(0x494e_4552, 600, 4);
    let end = SimTime::from_secs(300);
    let off = Config::small();
    let mut inert = Config::small();
    inert.faults = Some(FaultPlan::default());
    let (rec_off, cnt_off, _) = run_script(off, &script, end);
    let (rec_inert, cnt_inert, _) = run_script(inert, &script, end);
    assert_eq!(rec_off, rec_inert, "inert plan: identical records");
    assert_eq!(cnt_off, cnt_inert, "inert plan: identical counters");
}

/// Conservative partition recovery is a pure accounting overlay: the
/// cut changes stall and heal-storm *counters*, but every operation
/// still executes semantically, so the emitted trace records are
/// byte-identical to a fault-free run of the same script.
#[test]
fn conservative_partition_is_pure_accounting() {
    let script = op_script(0x4f56_4c59, 600, 4);
    let end = SimTime::from_secs(300);
    let off = Config::small();
    let mut cut = Config::small();
    cut.faults = Some(partition_plan(true));
    let (rec_off, _, _) = run_script(off, &script, end);
    let (rec_cut, cnt_cut, _) = run_script(cut, &script, end);
    assert_eq!(
        rec_off, rec_cut,
        "conservative mode never changes data flow, only counters"
    );
    let total = |key: &str| -> u64 {
        cnt_cut
            .iter()
            .filter(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
            .sum()
    };
    assert!(total(fault::PART_STALLED_RPCS) > 0, "the cut was charged");
    assert_eq!(
        total(fault::LEASE_EXPIRY_RECALLS),
        0,
        "conservative mode never revokes"
    );
}

const POLICIES: [ConsistencyPolicy; 4] = [
    ConsistencyPolicy::Sprite,
    ConsistencyPolicy::SpriteModified,
    ConsistencyPolicy::Token,
    ConsistencyPolicy::Polling { interval_secs: 10 },
];

/// Property fuzz: random partition plans (random windows, edges, TTLs,
/// both heal protocols) interleaved with scheduled server outages and
/// imperative client crashes, under every consistency policy. The
/// cluster must survive, keep its cache invariants, and — because
/// revocation rolls the oracle's expectations back like a client crash
/// does — SpriteSan must stay clean through every interleaving.
#[test]
fn fuzz_partitions_interleave_with_crashes() {
    let mut rng = SimRng::seed_from_u64(0x4655_5a5a_5041_5254);
    for case in 0..32u64 {
        let mut cfg = Config::small();
        cfg.consistency = POLICIES[case as usize % POLICIES.len()];
        cfg.sanitize = true;

        let mut plan = FaultPlan::default();
        // 1-3 partitions with random windows inside the 150 s script.
        for _ in 0..rng.range(1, 3) {
            let at = rng.range(5, 100);
            let heal_after = rng.range(5, 60);
            let mut edges = Vec::new();
            for c in 0..cfg.num_clients {
                if rng.below(2) == 0 {
                    edges.push((c, 0u16));
                }
            }
            if edges.is_empty() {
                edges.push((rng.below(cfg.num_clients as u64) as u16, 0));
            }
            plan.partitions.push(Partition {
                at: SimTime::from_secs(at),
                heal_after: SimDuration::from_secs(heal_after),
                edges,
            });
        }
        // Sometimes a server outage overlapping the partitions.
        if rng.below(2) == 0 {
            let at = rng.range(10, 80);
            plan.outages.push(ServerOutage {
                server: 0,
                at: SimTime::from_secs(at),
                down_for: SimDuration::from_secs(rng.range(5, 30)),
            });
        }
        plan.lease_ttl = SimDuration::from_secs(rng.range(1, 30));
        plan.conservative_recovery = rng.below(2) == 0;
        cfg.faults = Some(plan);
        cfg.validate().expect("fuzzed plan is well-formed");

        let script = op_script(0x4655_5a5a ^ case, 600, cfg.num_clients);
        let total_mem = cfg.client_mem_bytes;
        let sink = VecSink::new(cfg.num_servers);
        let mut cl = Cluster::new(cfg, sink);
        // Handles die with their client: skip script ops that target an
        // fd opened before that client's last crash (the kernel would
        // have returned EBADF; do_fsync is strict about it).
        let mut live_fds: Vec<std::collections::HashSet<Handle>> =
            vec![std::collections::HashSet::new(); 4];
        for (i, op) in script.iter().enumerate() {
            let ci = op.client.raw() as usize;
            let alive = match op.kind {
                OpKind::Open { fd, .. } => {
                    live_fds[ci].insert(fd);
                    true
                }
                OpKind::Close { fd } => live_fds[ci].remove(&fd),
                OpKind::Read { fd, .. }
                | OpKind::Write { fd, .. }
                | OpKind::Fsync { fd }
                | OpKind::Seek { fd, .. } => live_fds[ci].contains(&fd),
                _ => true,
            };
            if alive {
                cl.apply(op);
            }
            // Imperative client crashes interleave with the scheduled
            // partitions and outages.
            if i % 97 == 96 {
                let victim = rng.below(4) as usize;
                cl.crash_client(ClientId(victim as u16));
                live_fds[victim].clear();
            }
            for client in cl.clients() {
                let cache_bytes = client.cache.len() as u64 * 4096;
                assert!(cache_bytes <= total_mem, "cache exceeds physical memory");
                assert!(client.cache.dirty_len() <= client.cache.len());
            }
        }
        // Run far past every heal and reboot so queued work drains.
        cl.run(std::iter::empty(), SimTime::from_secs(400));
        let san = cl.take_sanitizer_stats().expect("sanitized run");
        assert!(
            san.is_clean(),
            "case {case}: oracle dirty across partition/crash interleaving: {}",
            san.render()
        );
    }
}
