//! Randomized tests for the cache and memory-manager invariants, driven
//! by the workspace's seeded `SimRng` so the suite is hermetic offline.

use sdfs_simkit::{SimDuration, SimRng, SimTime};
use sdfs_spritefs::cache::{BlockCache, BlockKey};
use sdfs_spritefs::vm::{FcGrant, MemoryManager};
use sdfs_trace::FileId;

mod cluster_fuzz {
    use sdfs_simkit::{SimRng, SimTime};
    use sdfs_spritefs::{AppOp, Cluster, Config, ConsistencyPolicy, OpKind, VecSink};
    use sdfs_trace::{ClientId, FileId, Handle, OpenMode, Pid, ServerId, UserId};

    /// A compact alphabet of operations; handles and files are small so
    /// sequences collide and exercise sharing, recalls, and staleness.
    /// Client crashes, server crashes, and server recoveries interleave
    /// freely with regular traffic.
    #[derive(Debug, Clone)]
    enum Step {
        Create(u8),
        Open(u8, u8, u8), // client, file, mode
        Read(u8, u8, u32),
        Write(u8, u8, u32),
        Seek(u8, u8, u32),
        Close(u8, u8),
        Fsync(u8, u8),
        Delete(u8),
        Truncate(u8),
        Crash(u8),
        Proc(u8),
        SrvCrash,
        SrvRecover,
    }

    fn random_step(rng: &mut SimRng) -> Step {
        let b = |rng: &mut SimRng| rng.below(256) as u8;
        match rng.below(13) {
            0 => Step::Create(b(rng)),
            1 => Step::Open(b(rng), b(rng), b(rng)),
            2 => Step::Read(b(rng), b(rng), rng.next_u64() as u32),
            3 => Step::Write(b(rng), b(rng), rng.next_u64() as u32),
            4 => Step::Seek(b(rng), b(rng), rng.next_u64() as u32),
            5 => Step::Close(b(rng), b(rng)),
            6 => Step::Fsync(b(rng), b(rng)),
            7 => Step::Delete(b(rng)),
            8 => Step::Truncate(b(rng)),
            9 => Step::Crash(b(rng)),
            10 => Step::Proc(b(rng)),
            11 => Step::SrvCrash,
            _ => Step::SrvRecover,
        }
    }

    const POLICIES: [ConsistencyPolicy; 4] = [
        ConsistencyPolicy::Sprite,
        ConsistencyPolicy::SpriteModified,
        ConsistencyPolicy::Token,
        ConsistencyPolicy::Polling { interval_secs: 10 },
    ];

    /// The cluster survives arbitrary (well-formed-enough) op sequences
    /// under every policy, with its core invariants intact.
    #[test]
    fn cluster_survives_random_streams() {
        let mut rng = SimRng::seed_from_u64(0x5350_5249_5445);
        for case in 0..64 {
            let policy = POLICIES[case % POLICIES.len()];
            let n_steps = rng.below(250) as usize;
            let steps: Vec<Step> = (0..n_steps).map(|_| random_step(&mut rng)).collect();
            run_case(steps, policy);
        }
    }

    fn run_case(steps: Vec<Step>, policy: ConsistencyPolicy) {
        let mut cfg = Config::small();
        cfg.consistency = policy;
        let total_mem = cfg.client_mem_bytes;
        let mut cluster = Cluster::new(cfg, VecSink::new(1));
        // fd bookkeeping so Read/Write/Close target live handles.
        let mut live: Vec<Vec<Handle>> = vec![Vec::new(); 4];
        let mut exists = [false; 8];
        let mut next_fd = 1u64;
        let mut t = 0u64;
        let mut proc_live: Vec<Vec<Pid>> = vec![Vec::new(); 4];
        let mut next_pid = 1u32;
        for s in steps {
            t += 1;
            let now = SimTime::from_millis(t * 250);
            let mk = |client: u16, kind| AppOp {
                time: now,
                client: ClientId(client),
                user: UserId(client as u32),
                pid: Pid(0),
                migrated: false,
                kind,
            };
            match s {
                Step::Create(f) => {
                    let f = f % 8;
                    cluster.apply(&mk(
                        0,
                        OpKind::Create {
                            file: FileId(f as u64),
                            is_dir: false,
                        },
                    ));
                    exists[f as usize] = true;
                }
                Step::Open(c, f, m) => {
                    let c = c % 4;
                    let f = f % 8;
                    if !exists[f as usize] {
                        continue;
                    }
                    let fd = Handle(next_fd);
                    next_fd += 1;
                    let mode = match m % 3 {
                        0 => OpenMode::Read,
                        1 => OpenMode::Write,
                        _ => OpenMode::ReadWrite,
                    };
                    cluster.apply(&mk(
                        c as u16,
                        OpKind::Open {
                            fd,
                            file: FileId(f as u64),
                            mode,
                        },
                    ));
                    live[c as usize].push(fd);
                }
                Step::Read(c, slot, n) => {
                    let c = (c % 4) as usize;
                    if let Some(&fd) = live[c].get(slot as usize % live[c].len().max(1)) {
                        cluster.apply(&mk(
                            c as u16,
                            OpKind::Read {
                                fd,
                                len: (n % 100_000) as u64,
                            },
                        ));
                    }
                }
                Step::Write(c, slot, n) => {
                    let c = (c % 4) as usize;
                    if let Some(&fd) = live[c].get(slot as usize % live[c].len().max(1)) {
                        cluster.apply(&mk(
                            c as u16,
                            OpKind::Write {
                                fd,
                                len: (n % 100_000) as u64,
                            },
                        ));
                    }
                }
                Step::Seek(c, slot, n) => {
                    let c = (c % 4) as usize;
                    if let Some(&fd) = live[c].get(slot as usize % live[c].len().max(1)) {
                        cluster.apply(&mk(
                            c as u16,
                            OpKind::Seek {
                                fd,
                                to: (n % 1_000_000) as u64,
                            },
                        ));
                    }
                }
                Step::Close(c, slot) => {
                    let c = (c % 4) as usize;
                    if live[c].is_empty() {
                        continue;
                    }
                    let idx = slot as usize % live[c].len();
                    let fd = live[c].remove(idx);
                    cluster.apply(&mk(c as u16, OpKind::Close { fd }));
                }
                Step::Fsync(c, slot) => {
                    let c = (c % 4) as usize;
                    if let Some(&fd) = live[c].get(slot as usize % live[c].len().max(1)) {
                        cluster.apply(&mk(c as u16, OpKind::Fsync { fd }));
                    }
                }
                Step::Delete(f) => {
                    let f = f % 8;
                    if exists[f as usize] {
                        cluster.apply(&mk(
                            0,
                            OpKind::Delete {
                                file: FileId(f as u64),
                            },
                        ));
                        exists[f as usize] = false;
                    }
                }
                Step::Truncate(f) => {
                    let f = f % 8;
                    if exists[f as usize] {
                        cluster.apply(&mk(
                            0,
                            OpKind::Truncate {
                                file: FileId(f as u64),
                            },
                        ));
                    }
                }
                Step::Crash(c) => {
                    let c = (c % 4) as usize;
                    cluster.crash_client(ClientId(c as u16));
                    // Handles on this client are gone.
                    live[c].clear();
                    proc_live[c].clear();
                }
                Step::SrvCrash => {
                    // Config::small has one server; a crash while clients
                    // hold opens and dirty blocks exercises the volatile
                    // state rebuild. Both calls are idempotent no-ops when
                    // the server is already in the requested state.
                    cluster.crash_server(ServerId(0));
                }
                Step::SrvRecover => {
                    cluster.recover_server(ServerId(0));
                }
                Step::Proc(c) => {
                    let c = (c % 4) as usize;
                    if proc_live[c].len() < 3 {
                        let pid = Pid(next_pid);
                        next_pid += 1;
                        let mut op = mk(
                            c as u16,
                            OpKind::ProcStart {
                                exec: FileId(200 + c as u64),
                                code_bytes: 64 << 10,
                                data_bytes: 16 << 10,
                                heap_bytes: 64 << 10,
                            },
                        );
                        op.pid = pid;
                        cluster.apply(&op);
                        proc_live[c].push(pid);
                    } else if let Some(pid) = proc_live[c].pop() {
                        let mut op = mk(c as u16, OpKind::ProcExit);
                        op.pid = pid;
                        cluster.apply(&op);
                    }
                }
            }
            // Invariants after every step.
            for client in cluster.clients() {
                let cache_bytes = client.cache.len() as u64 * 4096;
                assert!(cache_bytes <= total_mem, "cache exceeds physical memory");
                assert!(client.cache.dirty_len() <= client.cache.len());
                let c = &client.metrics.counters;
                assert!(c.get("cache.read.miss.ops") <= c.get("cache.read.ops"));
            }
        }
        // Bring the server back (a no-op if it is up) so the drain below
        // can actually deliver queued write-backs.
        cluster.recover_server(ServerId(0));
        // Drain: advance time so the daemon flushes everything.
        let end = SimTime::from_millis((t + 1) * 250) + sdfs_simkit::SimDuration::from_secs(120);
        cluster.run(std::iter::empty(), end);
        for (c, fds) in live.iter().enumerate() {
            for &fd in fds {
                cluster.apply(&AppOp {
                    time: end,
                    client: ClientId(c as u16),
                    user: UserId(c as u32),
                    pid: Pid(0),
                    migrated: false,
                    kind: OpKind::Close { fd },
                });
            }
        }
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u8, u8),
    Touch(u8, u8),
    Dirty(u8, u8),
    Clean(u8, u8),
    Remove(u8, u8),
    PopLru,
}

fn random_cache_op(rng: &mut SimRng) -> CacheOp {
    let b = |rng: &mut SimRng| rng.below(256) as u8;
    match rng.below(6) {
        0 => CacheOp::Insert(b(rng), b(rng)),
        1 => CacheOp::Touch(b(rng), b(rng)),
        2 => CacheOp::Dirty(b(rng), b(rng)),
        3 => CacheOp::Clean(b(rng), b(rng)),
        4 => CacheOp::Remove(b(rng), b(rng)),
        _ => CacheOp::PopLru,
    }
}

fn key(f: u8, b: u8) -> BlockKey {
    BlockKey {
        file: FileId(f as u64 % 8),
        index: b as u64 % 8,
    }
}

/// The cache never loses track of itself: per-file views agree with the
/// global view, dirty is a subset, and LRU pops drain it fully.
#[test]
fn cache_invariants() {
    let mut rng = SimRng::seed_from_u64(0x4341_4348_4501);
    for _ in 0..256 {
        let n_ops = rng.below(200) as usize;
        let mut cache = BlockCache::new();
        let mut t = 0u64;
        for _ in 0..n_ops {
            let op = random_cache_op(&mut rng);
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                CacheOp::Insert(f, b) => cache.insert(key(f, b), now),
                CacheOp::Touch(f, b) => {
                    cache.touch(key(f, b), now);
                }
                CacheOp::Dirty(f, b) => {
                    if cache.contains(key(f, b)) {
                        cache.mark_dirty(key(f, b), now, 1);
                    }
                }
                CacheOp::Clean(f, b) => {
                    cache.clean(key(f, b));
                }
                CacheOp::Remove(f, b) => {
                    cache.remove(key(f, b));
                }
                CacheOp::PopLru => {
                    cache.pop_lru();
                }
            }
            assert!(cache.dirty_len() <= cache.len());
            let by_file: usize = (0..8).map(|f| cache.blocks_of(FileId(f)).len()).sum();
            assert_eq!(by_file, cache.len(), "per-file view diverged");
            let dirty_by_file: usize = (0..8)
                .map(|f| cache.dirty_blocks_of(FileId(f)).len())
                .sum();
            assert_eq!(dirty_by_file, cache.dirty_len());
        }
        // Draining via LRU empties everything.
        let mut drained = 0;
        while cache.pop_lru().is_some() {
            drained += 1;
            assert!(drained <= 64, "more blocks than possible keys");
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.dirty_len(), 0);
    }
}

/// LRU order: after touching everything in a known order, pops come back
/// in that order.
#[test]
fn lru_order_is_touch_order() {
    for n in 2usize..20 {
        let mut cache = BlockCache::new();
        for i in 0..n {
            cache.insert(
                BlockKey {
                    file: FileId(i as u64),
                    index: 0,
                },
                SimTime::from_secs(i as u64),
            );
        }
        // Touch in reverse: file n-1 .. 0 at later times.
        for (step, i) in (0..n).rev().enumerate() {
            cache.touch(
                BlockKey {
                    file: FileId(i as u64),
                    index: 0,
                },
                SimTime::from_secs((n + step) as u64),
            );
        }
        // The least recently touched is the one touched first in the
        // reverse pass: n-1.
        for i in (0..n).rev() {
            let (k, _) = cache.pop_lru().expect("non-empty");
            assert_eq!(k.file, FileId(i as u64));
        }
    }
}

/// Memory conservation: fc + free never exceed total, and every grant
/// path keeps the books balanced.
#[test]
fn memory_manager_conserves_pages() {
    let mut rng = SimRng::seed_from_u64(0x4d45_4d01);
    for _ in 0..256 {
        let n_ops = rng.below(100) as usize;
        let total_pages = 64u64;
        let mut mm = MemoryManager::new(
            total_pages * 4096,
            0,
            4096,
            SimDuration::from_mins(20),
            SimDuration::from_mins(20),
        );
        let mut t = 0u64;
        let mut active = 0u64; // VM pages we believe are active
        for _ in 0..n_ops {
            let op = rng.below(4) as u8;
            let n = rng.range(1, 16);
            t += 60;
            let now = SimTime::from_secs(t);
            match op {
                0 => {
                    // File cache wants n pages.
                    for _ in 0..n {
                        match mm.fc_acquire(now) {
                            FcGrant::FromFree | FcGrant::FromIdleVm => {}
                            FcGrant::MustEvict => {
                                if mm.fc_pages() > 0 {
                                    // Caller would evict + reuse: no-op here.
                                }
                            }
                        }
                    }
                }
                1 => {
                    // VM wants n pages.
                    let steal = mm.vm_acquire(n);
                    for _ in 0..steal {
                        if mm.fc_pages() > 0 {
                            mm.fc_release(1);
                            mm.force_grow(1);
                        } else {
                            mm.force_grow(1);
                        }
                    }
                    active += n;
                }
                2 => {
                    // VM releases up to what is active.
                    let rel = n.min(active);
                    if rel > 0 {
                        mm.vm_release(now, rel);
                        active -= rel;
                    }
                }
                _ => {
                    // File cache shrinks.
                    let rel = n.min(mm.fc_pages());
                    mm.fc_release(rel);
                }
            }
            assert!(mm.idle_vm_pages() <= mm.vm_pages());
            // Free never exceeds the machine (saturating arithmetic is
            // allowed to clamp under overcommit, never to exceed).
            assert!(mm.free_pages() <= total_pages);
            assert!(mm.fc_pages() <= total_pages);
        }
    }
}
