//! The lint rules and the per-file scan engine.
//!
//! Each rule guards one way nondeterminism (or an unchecked panic) can
//! creep back into the simulator. Rules are scoped per crate: the
//! analysis and simulation crates are held to the determinism contract,
//! while the bench harness may freely read the wall clock to time
//! itself.
//!
//! Suppression: a comment containing `lint:allow(<rule>)` silences that
//! rule on the comment's own line and the following line; a comment
//! containing `lint:allow-file(<rule>)` silences it for the whole file.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::Event;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No wall-clock reads (`SystemTime`, `Instant`) in simulation or
    /// analysis code: simulated time must come from `SimTime`.
    WallClock,
    /// No OS entropy (`RandomState`, `thread_rng`, `OsRng`, ...):
    /// randomness must come from the seeded `simkit` RNG.
    OsEntropy,
    /// No default-hasher `HashMap`/`HashSet`: their per-process random
    /// seed makes iteration order differ between runs, and an iteration
    /// order that leaks into results breaks byte-identical output. Use
    /// `FastMap`/`FastSet` or a sorted collection.
    DefaultHasher,
    /// No `.unwrap()` in library code: convert to a typed error, or use
    /// `expect` with an invariant message.
    Unwrap,
    /// No `f32` in statistics paths: accumulating in single precision
    /// makes reductions sensitive to association order.
    FloatStats,
    /// No detached `thread::spawn` in simulation or analysis code: a
    /// worker that can outlive its caller breaks the deterministic
    /// join-then-merge discipline the parallel engine depends on. Use
    /// `std::thread::scope` (whose `s.spawn` is allowed) so every
    /// worker provably joins before results are read.
    UnscopedThread,
    /// Worker-plane code (statically reachable from `ClientTask`
    /// execution in the parallel engine) may not touch
    /// coordinator-owned state. Produced by the [`crate::planes`]
    /// analysis, not by the per-file token scan.
    PlaneSafety,
    /// A `lint:allow(<name>)` / `lint:allow-file(<name>)` directive
    /// names a rule that does not exist: the suppression silently does
    /// nothing, which is worse than no suppression at all.
    UnknownAllow,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::OsEntropy,
        Rule::DefaultHasher,
        Rule::Unwrap,
        Rule::FloatStats,
        Rule::UnscopedThread,
        Rule::PlaneSafety,
        Rule::UnknownAllow,
    ];

    /// Looks a rule up by its report name.
    pub fn by_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The rule's name as used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::DefaultHasher => "default-hasher",
            Rule::Unwrap => "unwrap",
            Rule::FloatStats => "float-stats",
            Rule::UnscopedThread => "unscoped-thread",
            Rule::PlaneSafety => "plane-safety",
            Rule::UnknownAllow => "unknown-allow",
        }
    }

    /// The crates the rule applies to. The bench harness may read the
    /// wall clock (it times itself) and, as binary code, may `.unwrap()`
    /// on startup errors — but entropy, order-leaking hashers, and
    /// detached threads would corrupt its reports just as surely as the
    /// simulator's, so those rules bind it too.
    pub fn scope(self) -> &'static [&'static str] {
        const DETERMINISM: &[&str] = &["simkit", "spritefs", "core", "trace", "workload"];
        const DETERMINISM_AND_BENCH: &[&str] =
            &["simkit", "spritefs", "core", "trace", "workload", "bench"];
        const STATISTICS: &[&str] = &["simkit", "core"];
        const WORKSPACE: &[&str] =
            &["simkit", "spritefs", "core", "trace", "workload", "bench", "lint"];
        match self {
            Rule::WallClock | Rule::Unwrap => DETERMINISM,
            Rule::OsEntropy | Rule::DefaultHasher | Rule::UnscopedThread => {
                DETERMINISM_AND_BENCH
            }
            Rule::FloatStats => STATISTICS,
            Rule::PlaneSafety => &["spritefs"],
            Rule::UnknownAllow => WORKSPACE,
        }
    }

    /// Identifiers whose appearance in code triggers the rule.
    fn trigger_idents(self) -> &'static [&'static str] {
        match self {
            Rule::WallClock => &["SystemTime", "Instant"],
            Rule::OsEntropy => &[
                "RandomState",
                "thread_rng",
                "OsRng",
                "ThreadRng",
                "getrandom",
                "from_entropy",
            ],
            Rule::DefaultHasher => &["HashMap", "HashSet"],
            Rule::Unwrap => &[], // matched as `.unwrap`, not a bare ident
            Rule::FloatStats => &["f32"],
            Rule::UnscopedThread => &[], // matched as `thread::spawn`, not a bare ident
            Rule::PlaneSafety => &[],    // produced by the planes analysis
            Rule::UnknownAllow => &[],   // produced by the allow-directive parse
        }
    }

    /// Substrings that trigger the rule inside doc-comment code fences
    /// (doctests compile and run, so they are held to the same bar).
    fn doc_triggers(self) -> &'static [&'static str] {
        match self {
            Rule::Unwrap => &[".unwrap()"],
            Rule::WallClock => &["SystemTime::now", "Instant::now"],
            Rule::UnscopedThread => &["thread::spawn("],
            _ => &[],
        }
    }

    /// One-line explanation used in reports.
    pub fn message(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock read; simulation/analysis code must use SimTime, not host time"
            }
            Rule::OsEntropy => "OS entropy source; use the seeded simkit RNG",
            Rule::DefaultHasher => {
                "default-hasher map; use FastMap/FastSet or a sorted collection so \
                 iteration order cannot leak into results"
            }
            Rule::Unwrap => ".unwrap() in library code; use a typed error or expect(\"invariant\")",
            Rule::FloatStats => "f32 in a statistics path; accumulate in f64",
            Rule::UnscopedThread => {
                "detached thread::spawn; use std::thread::scope so every worker \
                 joins before results are merged"
            }
            Rule::PlaneSafety => {
                "worker-plane code touches coordinator-owned state; route the \
                 effect through the logged SrvEvent channel (DESIGN.md \u{a7}14)"
            }
            Rule::UnknownAllow => {
                "lint:allow names an unknown rule, so it suppresses nothing; \
                 fix the name or remove the directive"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule violated.
    pub rule: Rule,
    /// Finding-specific detail (plane-safety and unknown-allow findings
    /// name their subject here); `None` for plain token-scan findings.
    pub detail: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.rule.message()
        )?;
        if let Some(detail) = &self.detail {
            write!(f, " \u{2014} {detail}")?;
        }
        Ok(())
    }
}

/// One `lint:allow` / `lint:allow-file` suppression site, with the
/// staleness verdict the audit reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// Path of the file carrying the directive.
    pub file: String,
    /// 1-based line of the directive's comment.
    pub line: u32,
    /// The suppressed rule.
    pub rule: Rule,
    /// Whether the directive is file-wide (`lint:allow-file`).
    pub file_wide: bool,
    /// `true` when the rule no longer fires on the guarded range (the
    /// directive's line and the next for line allows; anywhere in the
    /// file for file allows): the suppression suppresses nothing.
    pub stale: bool,
}

impl fmt::Display for AllowSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: lint:allow{}({}){}",
            self.file,
            self.line,
            if self.file_wide { "-file" } else { "" },
            self.rule.name(),
            if self.stale { " STALE: rule no longer fires here" } else { "" }
        )
    }
}

/// Full scan output: findings plus every suppression site.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// Lint findings, sorted by line.
    pub violations: Vec<Violation>,
    /// Allow directives seen, sorted by line.
    pub allows: Vec<AllowSite>,
}

/// Scans one lexed file. `crate_name` selects which rules apply (the
/// `sdfs-` prefix and any path decoration must already be stripped,
/// e.g. `"spritefs"`).
pub fn scan(events: &[Event], crate_name: &str, rel_path: &str) -> Vec<Violation> {
    scan_full(events, crate_name, rel_path).violations
}

/// Scans one lexed file, also reporting every suppression site with
/// its staleness verdict (`repro lint --audit`).
pub fn scan_full(events: &[Event], crate_name: &str, rel_path: &str) -> ScanOutput {
    let active: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|r| r.scope().contains(&crate_name))
        .collect();

    // Pass 1: collect allow directives from comments. A directive
    // naming a rule that does not exist is itself a violation — a typo
    // here would otherwise disable nothing while looking like it
    // disables something.
    let mut allowed_lines: BTreeSet<(Rule, u32)> = BTreeSet::new();
    let mut allowed_file: BTreeSet<Rule> = BTreeSet::new();
    let mut allow_sites: Vec<(Rule, u32, bool)> = Vec::new();
    let mut unknown: Vec<(u32, String)> = Vec::new();
    for ev in events {
        let (line, text) = match ev {
            Event::Comment { line, text } | Event::Doc { line, text } => (*line, text.as_str()),
            _ => continue,
        };
        for name in crate::parse::directive_names(text, "lint:allow-file(") {
            match Rule::by_name(name) {
                Some(rule) => {
                    allowed_file.insert(rule);
                    allow_sites.push((rule, line, true));
                }
                None => unknown.push((line, name.to_string())),
            }
        }
        for name in crate::parse::directive_names(text, "lint:allow(") {
            match Rule::by_name(name) {
                Some(rule) => {
                    allowed_lines.insert((rule, line));
                    allowed_lines.insert((rule, line + 1));
                    allow_sites.push((rule, line, false));
                }
                None => unknown.push((line, name.to_string())),
            }
        }
    }

    let mut output = ScanOutput::default();
    if active.is_empty() && allow_sites.is_empty() {
        return output;
    }

    // Rules whose triggers must be tracked: the active set, plus any
    // rule named by an allow directive (so staleness can be judged
    // even for a directive outside the rule's crate scope — which is
    // stale by definition unless the rule fires).
    let mut checked: Vec<Rule> = active.clone();
    for (rule, _, _) in &allow_sites {
        if !checked.contains(rule) {
            checked.push(*rule);
        }
    }

    // Unknown-allow findings (suppressible like any other rule).
    if active.contains(&Rule::UnknownAllow) {
        for (line, name) in &unknown {
            if allowed_file.contains(&Rule::UnknownAllow)
                || allowed_lines.contains(&(Rule::UnknownAllow, *line))
            {
                continue;
            }
            output.violations.push(Violation {
                file: rel_path.to_string(),
                line: *line,
                rule: Rule::UnknownAllow,
                detail: Some(format!("unknown rule `{name}`")),
            });
        }
    }

    // Raw trigger hits, recorded before suppression so the audit can
    // tell a working allow from a stale one.
    let mut raw_hits: Vec<(Rule, u32)> = Vec::new();

    // Pass 2: walk the token stream tracking brace depth and test
    // regions (`#[cfg(test)]`, `#[test]`, `mod tests`): code inside them
    // is exempt from every rule.
    let mut depth: i64 = 0;
    let mut test_until: Option<i64> = None;
    let mut pending_test = false;
    let mut in_fence = false;
    let mut prev_significant: Option<&Event> = None;

    // Matches the token tail against a fixed ident/punct pattern.
    let mut recent: Vec<(u32, String)> = Vec::new(); // (line, token text) ring
    let tail_matches = |recent: &[(u32, String)], pat: &[&str]| {
        recent.len() >= pat.len()
            && recent[recent.len() - pat.len()..]
                .iter()
                .zip(pat)
                .all(|((_, t), p)| t == p)
    };

    for ev in events {
        match ev {
            Event::Doc { line, text } => {
                let trimmed = text.trim_start();
                if trimmed.starts_with("```") {
                    in_fence = !in_fence;
                    continue;
                }
                // Lines inside a fence are doctest code unless the fence
                // opened as non-Rust (`text`, `ignore` fences still
                // compile unless marked `text`/`sh`; being strict here
                // is fine for this codebase).
                if in_fence && test_until.is_none() {
                    for &rule in &checked {
                        if rule.doc_triggers().iter().any(|t| text.contains(t)) {
                            raw_hits.push((rule, *line));
                            if active.contains(&rule)
                                && !allowed_file.contains(&rule)
                                && !allowed_lines.contains(&(rule, *line))
                            {
                                output.violations.push(Violation {
                                    file: rel_path.to_string(),
                                    line: *line,
                                    rule,
                                    detail: None,
                                });
                            }
                        }
                    }
                }
            }
            Event::Comment { .. } => {}
            Event::Punct { line: _, ch } => {
                in_fence = false;
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_test && test_until.is_none() {
                            test_until = Some(depth - 1);
                        }
                        pending_test = false;
                    }
                    '}' => {
                        depth -= 1;
                        if test_until == Some(depth) {
                            test_until = None;
                        }
                    }
                    ';' => pending_test = false,
                    _ => {}
                }
                recent.push((ev.line(), ch.to_string()));
                prev_significant = Some(ev);
            }
            Event::Ident { line, text } => {
                in_fence = false;
                recent.push((*line, text.clone()));
                if recent.len() > 16 {
                    recent.drain(..8);
                }
                // Entering test code?
                if tail_matches(&recent, &["#", "[", "cfg", "(", "test", ")", "]"])
                    || tail_matches(&recent, &["#", "[", "test", "]"])
                {
                    // The *closing* bracket arrives later; flag on the
                    // ident and confirm on the bracket below. Simpler:
                    // look for the full pattern when the next `{` comes.
                }
                if tail_matches(&recent, &["cfg", "(", "test"])
                    || tail_matches(&recent, &["mod", "tests"])
                    || tail_matches(&recent, &["mod", "test"])
                    || (text == "test"
                        && tail_matches(&recent, &["#", "[", "test"]))
                {
                    pending_test = true;
                }
                if test_until.is_some() {
                    prev_significant = Some(ev);
                    continue;
                }
                for &rule in &checked {
                    let hit = if rule == Rule::Unwrap {
                        text == "unwrap"
                            && matches!(prev_significant, Some(Event::Punct { ch: '.', .. }))
                    } else if rule == Rule::UnscopedThread {
                        // `thread::spawn` detaches; `thread::scope` and a
                        // scope handle's `s.spawn(..)` are the sanctioned
                        // join-before-merge form.
                        text == "spawn"
                            && tail_matches(&recent, &["thread", ":", ":", "spawn"])
                    } else {
                        rule.trigger_idents().contains(&text.as_str())
                    };
                    if hit {
                        raw_hits.push((rule, *line));
                        if active.contains(&rule)
                            && !allowed_file.contains(&rule)
                            && !allowed_lines.contains(&(rule, *line))
                        {
                            output.violations.push(Violation {
                                file: rel_path.to_string(),
                                line: *line,
                                rule,
                                detail: None,
                            });
                        }
                    }
                }
                prev_significant = Some(ev);
            }
        }
    }

    output.violations.sort_by_key(|v| v.line);

    // Staleness: a line allow must have a raw hit on its own line or
    // the next; a file allow must have one somewhere in the file.
    for (rule, line, file_wide) in allow_sites {
        let stale = if file_wide {
            !raw_hits.iter().any(|&(r, _)| r == rule)
        } else {
            !raw_hits
                .iter()
                .any(|&(r, l)| r == rule && (l == line || l == line + 1))
        };
        output.allows.push(AllowSite {
            file: rel_path.to_string(),
            line,
            rule,
            file_wide,
            stale,
        });
    }
    output.allows.sort_by_key(|a| (a.line, a.file_wide));
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str, krate: &str) -> Vec<Violation> {
        scan(&lex(src), krate, "x.rs")
    }

    #[test]
    fn wall_clock_flagged_in_scoped_crate() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }";
        let v = scan_src(src, "simkit");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WallClock);
    }

    #[test]
    fn wall_clock_ignored_outside_scope() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan_src(src, "bench").is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let src = r#"
            // SystemTime::now() would be wrong here
            fn f() { let s = "Instant::now()"; let _ = s; }
        "#;
        assert!(scan_src(src, "simkit").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m.get(&1).unwrap(); }
            }
        "#;
        assert!(scan_src(src, "spritefs").is_empty());
    }

    #[test]
    fn code_after_test_module_is_checked_again() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn t() {}
            }
            fn f() { let x: Option<u32> = None; let _ = x.unwrap(); }
        "#;
        let v = scan_src(src, "core");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
    }

    #[test]
    fn default_hasher_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        let v = scan_src(src, "spritefs");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::DefaultHasher));
    }

    #[test]
    fn allow_directive_silences_next_line() {
        let src = "// lint:allow(default-hasher)\nuse std::collections::HashMap;\n";
        assert!(scan_src(src, "simkit").is_empty());
        // But only that line.
        let src2 = "// lint:allow(default-hasher)\nuse std::collections::HashMap;\n\nfn f(m: HashMap<u32,u32>) {}\n";
        assert_eq!(scan_src(src2, "simkit").len(), 1);
    }

    #[test]
    fn allow_file_silences_everything() {
        let src =
            "//! lint:allow-file(default-hasher)\nuse std::collections::{HashMap, HashSet};\n";
        assert!(scan_src(src, "simkit").is_empty());
    }

    #[test]
    fn unwrap_needs_a_dot() {
        // A function *named* unwrap (or a path ending in unwrap) is not
        // a method call on a fallible value.
        let src = "fn unwrap() {}\nfn g() { unwrap(); }";
        assert!(scan_src(src, "core").is_empty());
        let src2 = "fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(scan_src(src2, "core").len(), 1);
    }

    #[test]
    fn doctest_unwrap_flagged() {
        let src = r#"
            /// Frobnicates.
            ///
            /// ```
            /// let x = frob().unwrap();
            /// ```
            pub fn frob() -> Option<u32> { Some(1) }
        "#;
        let v = scan_src(src, "trace");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
    }

    #[test]
    fn doc_prose_unwrap_not_flagged() {
        let src = "/// Never calls .unwrap() internally.\npub fn f() {}\n";
        assert!(scan_src(src, "trace").is_empty());
    }

    #[test]
    fn f32_flagged_in_stats_scope_only() {
        let src = "pub fn mean(xs: &[f32]) -> f32 { 0.0 }";
        assert_eq!(scan_src(src, "simkit").len(), 2);
        assert!(scan_src(src, "trace").is_empty());
    }

    #[test]
    fn f32_literal_suffix_flagged() {
        let src = "pub fn f() { let x = 1.5f32; }";
        assert_eq!(scan_src(src, "core").len(), 1);
    }

    #[test]
    fn entropy_flagged() {
        let src = "use std::collections::hash_map::RandomState;";
        assert_eq!(scan_src(src, "simkit").len(), 1);
    }

    #[test]
    fn detached_thread_spawn_flagged() {
        let src = "fn f() { let h = std::thread::spawn(|| 1); let _ = h.join(); }";
        let v = scan_src(src, "spritefs");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnscopedThread);
    }

    #[test]
    fn scoped_threads_allowed() {
        // The parallel engine's shape: thread::scope + s.spawn joins
        // every worker before results are merged — not a violation.
        let src = r#"
            fn f() {
                std::thread::scope(|s| {
                    let h = s.spawn(|| 1);
                    let _ = h.join();
                });
            }
        "#;
        assert!(scan_src(src, "spritefs").is_empty());
    }

    #[test]
    fn wall_clock_still_banned_alongside_scoped_threads() {
        // Allowing thread::scope must not relax the other rules in the
        // same (parallel) module.
        let src = r#"
            fn f() {
                std::thread::scope(|s| {
                    s.spawn(|| { let _t = std::time::Instant::now(); });
                });
            }
        "#;
        let v = scan_src(src, "spritefs");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WallClock);
    }

    #[test]
    fn detached_spawn_flagged_in_bench_too() {
        // The bench harness merges worker results just like the
        // simulator; a detached thread would corrupt its reports.
        let src = "fn f() { std::thread::spawn(|| 1); }";
        assert_eq!(scan_src(src, "bench").len(), 1);
        assert!(scan_src(src, "lint").is_empty());
    }

    #[test]
    fn unknown_allow_name_is_reported() {
        let src = "// lint:allow(wall-time)\nfn f() {}\n";
        let v = scan_src(src, "simkit");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnknownAllow);
        assert_eq!(v[0].line, 1);
        assert!(v[0].detail.as_deref().is_some_and(|d| d.contains("wall-time")));
    }

    #[test]
    fn unknown_allow_file_name_is_reported() {
        let src = "//! lint:allow-file(hashmap)\n";
        let v = scan_src(src, "lint");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnknownAllow);
    }

    #[test]
    fn unknown_allow_is_itself_suppressible() {
        let src = "// lint:allow(unknown-allow) lint:allow(wall-time)\nfn f() {}\n";
        assert!(scan_src(src, "simkit").is_empty());
    }

    #[test]
    fn doc_prose_allow_placeholder_not_reported() {
        // `<rule>` is not a directive name — prose describing the
        // grammar must not trip the unknown-allow rule.
        let src = "//! Use `lint:allow(<rule>)` to suppress a finding.\nfn f() {}\n";
        assert!(scan_src(src, "lint").is_empty());
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "// lint:allow(default-hasher)\nuse std::collections::HashMap;\n";
        let out = scan_full(&lex(src), "simkit", "x.rs");
        assert!(out.violations.is_empty());
        assert_eq!(out.allows.len(), 1);
        assert!(!out.allows[0].stale);
        assert!(!out.allows[0].file_wide);
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src = "// lint:allow(default-hasher)\nfn f() {}\n";
        let out = scan_full(&lex(src), "simkit", "x.rs");
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].stale);
        assert!(out.allows[0].to_string().contains("STALE"));
    }

    #[test]
    fn file_allow_staleness_judged_file_wide() {
        let live = "//! lint:allow-file(unwrap)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = scan_full(&lex(live), "core", "x.rs");
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].file_wide);
        assert!(!out.allows[0].stale);

        let stale = "//! lint:allow-file(unwrap)\nfn f() {}\n";
        let out = scan_full(&lex(stale), "core", "x.rs");
        assert!(out.allows[0].stale || out.allows.is_empty());
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].stale);
    }

    #[test]
    fn out_of_scope_allow_judged_by_trigger_presence() {
        // wall-clock does not bind the bench crate, so the directive
        // suppresses nothing — but the audit still reports the site,
        // stale only when the trigger is absent.
        let src = "// lint:allow(wall-clock)\nlet t = Instant::now();\n";
        let out = scan_full(&lex(src), "bench", "x.rs");
        assert!(out.violations.is_empty());
        assert_eq!(out.allows.len(), 1);
        assert!(!out.allows[0].stale);
    }
}
