//! Item recovery on top of the lexer: functions, impl blocks, and
//! structs with their fields.
//!
//! The plane-safety analysis ([`crate::planes`]) needs to know *which
//! function* a token belongs to, which type owns a method, and where a
//! function's body starts and ends. This module recovers exactly that —
//! no types, no expressions — by walking the [`crate::lexer::Event`]
//! stream with a brace-depth counter. Item spans are stored as index
//! ranges into the caller's event slice, so nothing is copied.
//!
//! Annotation grammar recognized here (see DESIGN.md §14):
//!
//! - `// plane:coordinator-only` immediately before a `fn`, `impl`, or
//!   `trait` marks the item (and, for blocks, every method inside) as
//!   coordinator-plane: the reachability analysis will not traverse
//!   call edges into it.
//! - `// plane:allow(<ident>)` silences a plane violation whose subject
//!   is `<ident>` on the comment's own line and the following line,
//!   mirroring the `lint:allow` grammar.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::lexer::Event;

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// The `impl`/`trait` self type, if the fn is a method.
    pub owner: Option<String>,
    /// Annotated `plane:coordinator-only` (directly or via its block).
    pub coordinator_only: bool,
    /// Defined inside a test region (`#[cfg(test)]` / `mod tests`).
    pub in_test: bool,
    /// Event-index range of the signature (after the name, up to the
    /// body brace or the terminating `;`).
    pub sig: Range<usize>,
    /// Event-index range of the body (inside the braces; empty for
    /// bodyless trait-method declarations).
    pub body: Range<usize>,
}

/// One recovered `struct` item.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Named fields, in declaration order (empty for tuple/unit structs).
    pub fields: Vec<String>,
}

/// Everything recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// Structs, in source order.
    pub structs: Vec<StructDef>,
    /// `plane:allow(<subject>)` sites as `(subject, guarded line)`;
    /// each directive guards its own line and the next.
    pub plane_allows: BTreeSet<(String, u32)>,
}

/// Extracts the name inside every `marker(<name>)` occurrence in `text`.
/// Names must be plain `[A-Za-z0-9_-]+` — anything else (prose like
/// `lint:allow(<rule>)` in documentation) is ignored.
pub fn directive_names<'a>(text: &'a str, marker: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        if let Some(end) = rest.find(')') {
            let name = &rest[..end];
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                out.push(name);
            }
        }
    }
    out
}

/// Parses one lexed file into items.
pub fn parse(events: &[Event]) -> ParsedFile {
    let mut out = ParsedFile::default();

    // Flat pre-pass for `plane:allow` sites: they are line-keyed, and
    // the item walk below skips function bodies wholesale.
    for ev in events {
        if let Event::Comment { line, text } | Event::Doc { line, text } = ev {
            for name in directive_names(text, "plane:allow(") {
                out.plane_allows.insert((name.to_string(), *line));
                out.plane_allows.insert((name.to_string(), *line + 1));
            }
        }
    }

    let n = events.len();
    let mut i = 0usize;
    let mut depth: i64 = 0;
    // (depth the block opened at, owner type, coordinator-only)
    let mut impl_stack: Vec<(i64, Option<String>, bool)> = Vec::new();
    let mut test_until: Option<i64> = None;
    let mut pending_test = false;
    let mut pending_coord = false;
    let mut recent: Vec<String> = Vec::new();

    let tail = |recent: &[String], pat: &[&str]| {
        recent.len() >= pat.len()
            && recent[recent.len() - pat.len()..]
                .iter()
                .zip(pat)
                .all(|(t, p)| t == p)
    };

    while i < n {
        match &events[i] {
            Event::Comment { line: _, text } | Event::Doc { line: _, text } => {
                if text.contains("plane:coordinator-only") {
                    pending_coord = true;
                }
                i += 1;
            }
            Event::Punct { ch, .. } => {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_test && test_until.is_none() {
                            test_until = Some(depth - 1);
                        }
                        pending_test = false;
                    }
                    '}' => {
                        depth -= 1;
                        if test_until == Some(depth) {
                            test_until = None;
                        }
                        while impl_stack.last().is_some_and(|t| t.0 == depth) {
                            impl_stack.pop();
                        }
                    }
                    ';' => pending_test = false,
                    _ => {}
                }
                recent.push(ch.to_string());
                if recent.len() > 16 {
                    recent.drain(..8);
                }
                i += 1;
            }
            Event::Ident { line: _, text } => {
                recent.push(text.clone());
                if recent.len() > 16 {
                    recent.drain(..8);
                }
                if tail(&recent, &["cfg", "(", "test"])
                    || tail(&recent, &["mod", "tests"])
                    || tail(&recent, &["mod", "test"])
                    || tail(&recent, &["#", "[", "test"])
                {
                    pending_test = true;
                }
                match text.as_str() {
                    "impl" | "trait" => {
                        let coord = pending_coord;
                        pending_coord = false;
                        let (owner, brace) = parse_block_header(events, i + 1);
                        match brace {
                            // Opening brace found: enter the block.
                            Some(b) => {
                                impl_stack.push((depth, owner, coord));
                                depth += 1;
                                if pending_test && test_until.is_none() {
                                    test_until = Some(depth - 1);
                                }
                                pending_test = false;
                                i = b + 1;
                            }
                            // `impl Trait` in type position, or EOF.
                            None => i += 1,
                        }
                    }
                    "fn" => {
                        let coord = pending_coord
                            || impl_stack.last().is_some_and(|t| t.2);
                        pending_coord = false;
                        let owner =
                            impl_stack.last().and_then(|t| t.1.clone());
                        let in_test = test_until.is_some() || pending_test;
                        pending_test = false;
                        if let Some((def, next)) =
                            parse_fn(events, i + 1, owner, coord, in_test)
                        {
                            out.fns.push(def);
                            i = next;
                        } else {
                            i += 1;
                        }
                    }
                    "struct" => {
                        pending_coord = false;
                        if let Some((def, next)) = parse_struct(events, i + 1)
                        {
                            if test_until.is_none() {
                                out.structs.push(def);
                            }
                            i = next;
                        } else {
                            i += 1;
                        }
                    }
                    _ => i += 1,
                }
            }
        }
    }
    out
}

/// Finds the next non-comment event at or after `i`.
fn next_sig(events: &[Event], mut i: usize) -> Option<usize> {
    while i < events.len() {
        match events[i] {
            Event::Comment { .. } | Event::Doc { .. } => i += 1,
            _ => return Some(i),
        }
    }
    None
}

/// Skips a balanced `<...>` group; `i` points at the opening `<`.
/// Returns the index just past the matching `>`.
fn skip_angles(events: &[Event], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < events.len() {
        if let Event::Punct { ch, .. } = events[j] {
            match ch {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                // `impl Fn(..) -> T` style arrows inside generics never
                // appear in this codebase's headers; `;` or `{` means
                // the header ended unbalanced — bail out.
                ';' | '{' => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Parses an `impl`/`trait` header starting just after the keyword.
/// Returns the recovered self-type name (last path segment, the one
/// after `for` when present) and the index of the opening `{`.
fn parse_block_header(
    events: &[Event],
    start: usize,
) -> (Option<String>, Option<usize>) {
    let mut j = start;
    let mut owner: Option<String> = None;
    while let Some(k) = next_sig(events, j) {
        match &events[k] {
            Event::Ident { text, .. } => {
                if text == "for" {
                    owner = None; // the self type follows `for`
                    j = k + 1;
                } else if text == "where" {
                    // Bounds may mention many types; the owner is fixed
                    // by now. Skip to the `{`.
                    let mut m = k + 1;
                    while let Some(p) = next_sig(events, m) {
                        if matches!(events[p], Event::Punct { ch: '{', .. }) {
                            return (owner, Some(p));
                        }
                        if matches!(events[p], Event::Punct { ch: ';', .. }) {
                            return (owner, None);
                        }
                        m = p + 1;
                    }
                    return (owner, None);
                } else {
                    owner = Some(text.clone());
                    j = k + 1;
                }
            }
            Event::Punct { ch: '<', .. } => j = skip_angles(events, k),
            Event::Punct { ch: '{', .. } => return (owner, Some(k)),
            Event::Punct { ch: ';', .. } => return (owner, None),
            Event::Punct { .. } => j = k + 1,
            _ => unreachable!("next_sig skips comments"),
        }
    }
    (owner, None)
}

/// Parses a `fn` item starting just after the keyword. Returns the def
/// and the index to resume the outer walk at (past the body).
fn parse_fn(
    events: &[Event],
    start: usize,
    owner: Option<String>,
    coordinator_only: bool,
    in_test: bool,
) -> Option<(FnDef, usize)> {
    let name_at = next_sig(events, start)?;
    let (name, line) = match &events[name_at] {
        Event::Ident { line, text } => (text.clone(), *line),
        _ => return None, // `fn` in type position (`Fn` is capitalized, so rare)
    };
    let sig_start = name_at + 1;
    // Scan the signature: no braces can appear before the body's `{`.
    let mut j = sig_start;
    while j < events.len() {
        match &events[j] {
            Event::Punct { ch: '{', .. } => {
                // Body: consume to the matching brace.
                let body_start = j + 1;
                let mut depth = 1i64;
                let mut k = body_start;
                while k < events.len() && depth > 0 {
                    if let Event::Punct { ch, .. } = events[k] {
                        match ch {
                            '{' => depth += 1,
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let body_end = k.saturating_sub(1); // before the final `}`
                return Some((
                    FnDef {
                        name,
                        line,
                        owner,
                        coordinator_only,
                        in_test,
                        sig: sig_start..j,
                        body: body_start..body_end,
                    },
                    k,
                ));
            }
            Event::Punct { ch: ';', .. } => {
                // Bodyless trait-method declaration.
                return Some((
                    FnDef {
                        name,
                        line,
                        owner,
                        coordinator_only,
                        in_test,
                        sig: sig_start..j,
                        body: j..j,
                    },
                    j + 1,
                ));
            }
            _ => j += 1,
        }
    }
    None
}

/// Parses a `struct` item starting just after the keyword.
fn parse_struct(events: &[Event], start: usize) -> Option<(StructDef, usize)> {
    let name_at = next_sig(events, start)?;
    let (name, line) = match &events[name_at] {
        Event::Ident { line, text } => (text.clone(), *line),
        _ => return None,
    };
    let mut j = name_at + 1;
    // Skip generics, then an optional where clause, to the body.
    loop {
        let k = next_sig(events, j)?;
        match &events[k] {
            Event::Punct { ch: '<', .. } => j = skip_angles(events, k),
            Event::Punct { ch: '{', .. } => {
                // Named fields: `ident :` at relative depth 1 where the
                // colon is single (`::` is a path) and the ident is not
                // itself a path segment.
                let mut fields = Vec::new();
                let mut depth = 1i64;
                let mut m = k + 1;
                while m < events.len() && depth > 0 {
                    match &events[m] {
                        Event::Punct { ch: '{', .. } => depth += 1,
                        Event::Punct { ch: '}', .. } => depth -= 1,
                        Event::Ident { text, .. } if depth == 1 => {
                            let single_colon = matches!(
                                events.get(m + 1),
                                Some(Event::Punct { ch: ':', .. })
                            ) && !matches!(
                                events.get(m + 2),
                                Some(Event::Punct { ch: ':', .. })
                            );
                            let after_colon = matches!(
                                events.get(m.wrapping_sub(1)),
                                Some(Event::Punct { ch: ':', .. })
                            );
                            if single_colon && !after_colon && text != "pub" {
                                fields.push(text.clone());
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                return Some((StructDef { name, line, fields }, m));
            }
            Event::Punct { ch: '(', .. } => {
                // Tuple struct: skip to the terminating `;`.
                let mut m = k;
                while m < events.len() {
                    if matches!(events[m], Event::Punct { ch: ';', .. }) {
                        return Some((
                            StructDef {
                                name,
                                line,
                                fields: Vec::new(),
                            },
                            m + 1,
                        ));
                    }
                    m += 1;
                }
                return None;
            }
            Event::Punct { ch: ';', .. } => {
                return Some((
                    StructDef {
                        name,
                        line,
                        fields: Vec::new(),
                    },
                    k + 1,
                ));
            }
            Event::Ident { text, .. } if text == "where" => j = k + 1,
            _ => j = k + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_fn_and_method() {
        let src = r#"
            fn free(x: u32) -> u32 { x + 1 }
            impl Widget {
                pub fn frob(&mut self) { self.spin(); }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "free");
        assert_eq!(p.fns[0].owner, None);
        assert_eq!(p.fns[1].name, "frob");
        assert_eq!(p.fns[1].owner.as_deref(), Some("Widget"));
    }

    #[test]
    fn trait_impl_owner_is_the_self_type() {
        let src = r#"
            impl<S: Sink> Access for Gadget<S> {
                fn read(&self) -> u8 { 0 }
            }
            impl View for FastMap<Key, u64> {
                fn size_of(&self) -> u64 { 1 }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Gadget"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("FastMap"));
    }

    #[test]
    fn generic_impl_header() {
        let src = "impl<S: TraceSink> Cluster<S> { fn run(&mut self) {} }";
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Cluster"));
    }

    #[test]
    fn trait_decl_methods_with_and_without_bodies() {
        let src = r#"
            trait Access {
                fn read(&self, n: u64) -> bool;
                fn write(&self) { let _ = self.read(0); }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Access"));
        assert!(p.fns[0].body.is_empty(), "bodyless decl");
        assert!(!p.fns[1].body.is_empty(), "default body captured");
    }

    #[test]
    fn struct_fields_recovered() {
        let src = r#"
            pub struct Meta {
                pub exists: bool,
                size: u64,
                inner: FastMap<FileId, Vec<u64>>,
            }
            struct Unit;
            struct Pair(u32, u32);
        "#;
        let p = parse_src(src);
        assert_eq!(p.structs.len(), 3);
        assert_eq!(p.structs[0].fields, vec!["exists", "size", "inner"]);
        assert!(p.structs[1].fields.is_empty());
        assert!(p.structs[2].fields.is_empty());
    }

    #[test]
    fn coordinator_annotation_binds_fn_and_block() {
        let src = r#"
            // plane:coordinator-only
            fn alone() {}
            // plane:coordinator-only — the inline path
            impl Direct {
                fn a(&self) {}
                fn b(&self) {}
            }
            fn unmarked() {}
        "#;
        let p = parse_src(src);
        assert!(p.fns[0].coordinator_only);
        assert!(p.fns[1].coordinator_only && p.fns[2].coordinator_only);
        assert!(!p.fns[3].coordinator_only);
    }

    #[test]
    fn plane_allow_sites_cover_two_lines() {
        let src = "// plane:allow(FileTable)\nfn f() {}\n";
        let p = parse_src(src);
        assert!(p.plane_allows.contains(&("FileTable".to_string(), 1)));
        assert!(p.plane_allows.contains(&("FileTable".to_string(), 2)));
    }

    #[test]
    fn directive_name_must_be_an_ident() {
        assert!(directive_names("see lint:allow(<rule>) for grammar", "lint:allow(").is_empty());
        assert_eq!(directive_names("lint:allow(wall-clock)", "lint:allow("), vec!["wall-clock"]);
        assert_eq!(
            directive_names("lint:allow(a) and lint:allow(b)", "lint:allow("),
            vec!["a", "b"]
        );
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
        "#;
        let p = parse_src(src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert!(!by_name("lib_code").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("t").in_test);
    }

    #[test]
    fn nested_braces_in_bodies_do_not_truncate() {
        let src = r#"
            fn outer() {
                match x {
                    A { y } => { if y { z(); } }
                    _ => {}
                }
            }
            fn after() {}
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }
}
