//! PlaneCheck: static worker/coordinator plane-safety analysis for the
//! `spritefs` parallel engine (DESIGN.md §14).
//!
//! The parallel simulation's soundness argument is an ownership rule:
//! code executed on shard workers (the *worker plane* — everything
//! reachable from `ClientTask` execution) must never read or write
//! coordinator-owned state — per-file consistency state
//! (`SrvFileState`/`CalmState`), the global `FileTable`, trace
//! emission (`TraceSink`), the CausalProf dependency trace
//! (`CausalTrace`), or the server caches and counters — except
//! through the logged-`SrvEvent` channel. This module checks that rule
//! statically:
//!
//! 1. Build the `spritefs` call graph ([`crate::graph`]).
//! 2. Compute the worker plane: every function reachable from the
//!    roots `worker_main` and `run_client_task`.
//! 3. Flag any worker-plane function that (a) is a method of a
//!    coordinator-owned type, (b) mentions a coordinator-owned type in
//!    its signature or body, or (c) accesses a coordinator-owned field.
//!
//! Name resolution is conservative with one deliberate narrowing: a
//! *method* call `recv.m(..)` whose name has at least one data-plane
//! candidate binds only to those candidates (e.g. `.serve_read(..)`
//! binds to the worker-side `EventLog`, not to `Server`); a method
//! name that exists *only* on coordinator-owned types is a hard error.
//! Free-function calls always bind to every same-named definition.
//! Edges into items annotated `// plane:coordinator-only` are cut —
//! the escape hatch that keeps the analysis zero-false-positive (each
//! annotation marks code that provably cannot run on a worker, e.g.
//! the inline `DirectServers` path or the sanitizer, which forces the
//! sequential engine). `// plane:allow(<subject>)` silences a single
//! finding, mirroring `lint:allow`.

use std::collections::BTreeSet;

use crate::graph::{self, SourceFile};
use crate::rules::{Rule, Violation};

/// Worker-plane entry points: `worker_main` executes dispatched tasks
/// on shard threads, and `run_client_task` is the shared task
/// interpreter it drives (also called inline by the coordinator, so it
/// must satisfy the worker contract).
pub const ROOTS: &[&str] = &["worker_main", "run_client_task"];

/// Types the coordinator owns: a worker-plane fn may not be one of
/// their methods.
const FORBIDDEN_OWNERS: &[&str] = &[
    "SrvFileState",
    "CalmState",
    "FileTable",
    "Cluster",
    "Server",
    "TraceSink",
    "VecSink",
    "CausalTrace",
];

/// Types a worker-plane fn may not mention at all (signature or body).
const FORBIDDEN_TYPES: &[&str] =
    &["SrvFileState", "CalmState", "FileTable", "TraceSink", "CausalTrace"];

/// Coordinator-owned fields a worker-plane fn may not access.
const FORBIDDEN_FIELDS: &[&str] =
    &["servers", "sink", "conflict_epoch", "fastpath", "causal"];

/// Method names shared with the std containers. When such a name's only
/// in-crate candidates are coordinator-owned, the receiver is almost
/// certainly a std type the analysis cannot see (`Vec`, `FastMap`), so
/// the edge is dropped; genuinely holding the coordinator type is still
/// caught by the mention check, because the receiver's type must be
/// named somewhere in the function.
const NEUTRAL_METHODS: &[&str] = &[
    "new", "default", "len", "is_empty", "iter", "iter_mut", "get",
    "get_mut", "insert", "remove", "push", "pop", "clear", "clone",
    "contains_key", "entry", "drain", "take", "extend",
];

/// BFS from the worker-plane roots with the method-call narrowing
/// described in the module docs. Returns reached node indices.
fn reach(g: &graph::Graph) -> BTreeSet<usize> {
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if ROOTS.contains(&f.name.as_str()) && !f.in_test && !f.coordinator_only
        {
            reached.insert(i);
            frontier.push(i);
        }
    }
    while let Some(i) = frontier.pop() {
        for call in &g.fns[i].calls {
            let Some(cands) = g.by_name.get(&call.name) else {
                continue;
            };
            // `Self::name(..)` resolves to the caller's own impl type.
            let qual: Option<&str> = match call.qual.as_deref() {
                Some("Self") => g.fns[i].owner.as_deref(),
                other => other,
            };
            let live: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| !g.fns[c].coordinator_only && !g.fns[c].in_test)
                .filter(|&c| match qual {
                    // A qualified call binds only to defs of that type
                    // (or to free fns, for module qualifiers).
                    Some(q) => match g.fns[c].owner.as_deref() {
                        Some(o) => o == q,
                        None => true,
                    },
                    None => true,
                })
                .collect();
            let benign: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&c| {
                    !g.fns[c]
                        .owner
                        .as_deref()
                        .is_some_and(|o| FORBIDDEN_OWNERS.contains(&o))
                })
                .collect();
            let targets = if call.method && !benign.is_empty() {
                benign
            } else if call.method
                && NEUTRAL_METHODS.contains(&call.name.as_str())
            {
                // All candidates coordinator-owned, but the name is a
                // std-container method: receiver is a std type.
                Vec::new()
            } else {
                live
            };
            for t in targets {
                if reached.insert(t) {
                    frontier.push(t);
                }
            }
        }
    }
    reached
}

/// Runs the plane analysis over one crate's files (intended for
/// `spritefs`). Returns violations sorted by `(file, line)`. A file
/// set without any root function yields no findings.
pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let g = graph::build(files);

    // plane_allows are per file; key allow lookups by (file, subject, line).
    let allowed = |file: &str, subject: &str, line: u32| -> bool {
        files
            .iter()
            .find(|f| f.rel == file)
            .is_some_and(|f| {
                f.parsed
                    .plane_allows
                    .contains(&(subject.to_string(), line))
            })
    };

    // Worker-plane reachability.
    let reached = reach(&g);

    // Ownership checks on every reached fn.
    let mut out: Vec<Violation> = Vec::new();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    let mut push = |file: &str, line: u32, subject: &str, detail: String| {
        if allowed(file, subject, line) {
            return;
        }
        if seen.insert((file.to_string(), line, detail.clone())) {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::PlaneSafety,
                detail: Some(detail),
            });
        }
    };
    for &i in &reached {
        let f = &g.fns[i];
        if let Some(owner) = f.owner.as_deref() {
            if FORBIDDEN_OWNERS.contains(&owner) {
                push(
                    &f.file,
                    f.line,
                    owner,
                    format!(
                        "worker-plane code reaches `{}::{}`, a method of \
                         coordinator-owned `{}`",
                        owner, f.name, owner
                    ),
                );
            }
        }
        for (name, line) in &f.mentions {
            if FORBIDDEN_TYPES.contains(&name.as_str()) {
                push(
                    &f.file,
                    *line,
                    name,
                    format!(
                        "worker-plane fn `{}` mentions coordinator-owned \
                         `{}`",
                        f.name, name
                    ),
                );
            }
        }
        for (name, line) in &f.fields {
            if FORBIDDEN_FIELDS.contains(&name.as_str()) {
                push(
                    &f.file,
                    *line,
                    name,
                    format!(
                        "worker-plane fn `{}` accesses coordinator-owned \
                         field `.{}`",
                        f.name, name
                    ),
                );
            }
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, &a.detail).cmp(&(&b.file, b.line, &b.detail))
    });
    out
}

/// The worker-plane function set, as `(file, line, name)` sorted —
/// exposed for the `repro lint` summary and for tests.
pub fn worker_plane(files: &[SourceFile]) -> Vec<(String, u32, String)> {
    let g = graph::build(files);
    reach(&g)
        .into_iter()
        .map(|i| {
            let f = &g.fns[i];
            (f.file.clone(), f.line, f.name.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str) -> Vec<Violation> {
        check(&[SourceFile::new("crates/spritefs/src/x.rs", src)])
    }

    const CLEAN_WORKER: &str = r#"
        fn worker_main(cfg: &Config) { run_client_task(cfg); }
        fn run_client_task(cfg: &Config) { data_read(cfg); }
        fn data_read(cfg: &Config) { let _ = cfg; }
    "#;

    #[test]
    fn clean_worker_plane_passes() {
        assert!(check_src(CLEAN_WORKER).is_empty());
    }

    #[test]
    fn no_roots_no_findings() {
        let src = "fn coordinator(t: &FileTable) { let _ = t; }";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn seeded_srv_file_state_read_is_caught_with_line() {
        let src = r#"
            fn worker_main() { run_client_task(); }
            fn run_client_task() { data_read(); }
            fn data_read() {
                let st: &SrvFileState = state();
                let _ = st;
            }
        "#;
        let v = check_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PlaneSafety);
        assert_eq!(v[0].file, "crates/spritefs/src/x.rs");
        assert_eq!(v[0].line, 5);
        assert!(v[0].detail.as_deref().is_some_and(|d| d.contains("SrvFileState")));
    }

    #[test]
    fn reaching_a_coordinator_owned_method_is_caught() {
        let src = r#"
            fn worker_main() { frob(); }
            fn frob() { x.file_state(); }
            impl Server {
                fn file_state(&mut self) {}
            }
        "#;
        let v = check_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.as_deref().is_some_and(|d| d.contains("Server")));
    }

    #[test]
    fn method_calls_prefer_data_plane_candidates() {
        // `.len()` exists on both the coordinator-owned FileTable and
        // the worker-owned BlockCache: the benign binding wins.
        let src = r#"
            fn worker_main() { c.len(); }
            impl FileTable { fn len(&self) -> usize { 0 } }
            impl BlockCache { fn len(&self) -> usize { 0 } }
        "#;
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn coordinator_only_annotation_cuts_the_edge() {
        let src = r#"
            fn worker_main() { s.serve_read(); }
            // plane:coordinator-only — inline path, never on a worker
            impl ServerAccess for DirectServers {
                fn serve_read(&mut self) { self.servers.read(); }
            }
            impl ServerAccess for EventLog {
                fn serve_read(&mut self) { self.events.push(1); }
            }
        "#;
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn plane_allow_silences_one_finding() {
        let src = r#"
            fn worker_main() { data_read(); }
            fn data_read() {
                // plane:allow(FileTable) — size mirror, reviewed
                let t: &FileTable = table();
                let _ = t;
            }
        "#;
        let v = check_src(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn forbidden_field_access_is_caught() {
        let src = r#"
            fn worker_main() { let x = self.sink; }
        "#;
        let v = check_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.as_deref().is_some_and(|d| d.contains(".sink")));
    }

    #[test]
    fn test_region_definitions_are_ignored() {
        let src = r#"
            fn worker_main() { helper(); }
            fn helper() {}
            #[cfg(test)]
            mod tests {
                fn helper(t: &FileTable) { let _ = t; }
            }
        "#;
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn report_is_deterministic() {
        let src = r#"
            fn worker_main() { a(); b(); }
            fn a(t: &FileTable) {}
            fn b(s: &SrvFileState) {}
        "#;
        let one: Vec<String> = check_src(src).iter().map(|v| v.to_string()).collect();
        let two: Vec<String> = check_src(src).iter().map(|v| v.to_string()).collect();
        assert_eq!(one, two);
        assert_eq!(one.len(), 2);
    }

    #[test]
    fn worker_plane_set_lists_reachable_fns() {
        let wp = worker_plane(&[SourceFile::new("x.rs", CLEAN_WORKER)]);
        let names: Vec<&str> = wp.iter().map(|(_, _, n)| n.as_str()).collect();
        assert_eq!(names, vec!["worker_main", "run_client_task", "data_read"]);
    }
}
