//! A minimal hand-rolled Rust lexer.
//!
//! The lint pass does not need a full parser — only a token stream that
//! is *correct about what is code and what is not*. Getting that right
//! means handling every way Rust can embed text that looks like code but
//! isn't (line and nested block comments, string and raw-string
//! literals, char literals vs. lifetimes) and preserving the pieces the
//! rule engine does care about: identifiers, punctuation, doc-comment
//! lines (doctests compile!), and ordinary comments (they carry
//! `lint:allow` directives).

/// One lexical event, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An identifier or keyword.
    Ident {
        /// Source line.
        line: u32,
        /// The identifier text.
        text: String,
    },
    /// A single punctuation character (operators are not glued).
    Punct {
        /// Source line.
        line: u32,
        /// The character.
        ch: char,
    },
    /// One line of doc comment (`///` or `//!`), text after the marker.
    Doc {
        /// Source line.
        line: u32,
        /// Text after the `///` / `//!` marker.
        text: String,
    },
    /// An ordinary comment (`//` line or `/* */` block), full text.
    Comment {
        /// Source line where the comment starts.
        line: u32,
        /// The comment body.
        text: String,
    },
}

impl Event {
    /// The source line of the event.
    pub fn line(&self) -> u32 {
        match self {
            Event::Ident { line, .. }
            | Event::Punct { line, .. }
            | Event::Doc { line, .. }
            | Event::Comment { line, .. } => *line,
        }
    }
}

/// Lexes `source` into a stream of [`Event`]s.
///
/// String and char literal *contents* are discarded (nothing inside a
/// string is code), numeric literals are discarded except that a
/// `f32`/`f64` suffix is surfaced as an [`Event::Ident`] so the float
/// rule can see `1.0f32`.
pub fn lex(source: &str) -> Vec<Event> {
    let b: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Line comments: plain, doc (///), and inner doc (//!).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            let doc = (j < n && b[j] == '/' && !(j + 1 < n && b[j + 1] == '/'))
                || (j < n && b[j] == '!');
            if doc {
                j += 1;
            } else if j < n && b[j] == '/' {
                // `////...` — treated as a plain comment, like rustdoc.
                while j < n && b[j] == '/' {
                    j += 1;
                }
            }
            let mut text = String::new();
            while j < n && b[j] != '\n' {
                text.push(b[j]);
                j += 1;
            }
            if doc {
                out.push(Event::Doc {
                    line: start_line,
                    text,
                });
            } else {
                out.push(Event::Comment {
                    line: start_line,
                    text,
                });
            }
            i = j;
            continue;
        }
        // Block comments, which nest in Rust.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump_line!(b[j]);
                    text.push(b[j]);
                    j += 1;
                }
            }
            out.push(Event::Comment {
                line: start_line,
                text,
            });
            i = j;
            continue;
        }
        // Raw strings: r"..."  r#"..."#  br#"..."# etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let mut j = i;
            while b[j] != 'r' {
                j += 1; // skip the b prefix
            }
            j += 1;
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            debug_assert!(j < n && b[j] == '"', "raw string must open with a quote");
            j += 1;
            // Scan for `"` followed by `hashes` hash marks.
            'scan: while j < n {
                if b[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break 'scan;
                    }
                }
                bump_line!(b[j]);
                j += 1;
            }
            i = j;
            continue;
        }
        // Ordinary (and byte) string literals.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    j += 1;
                    break;
                }
                bump_line!(b[j]);
                j += 1;
            }
            i = j;
            continue;
        }
        // Char literal vs. lifetime. A lifetime is `'ident` with no
        // closing quote; a char literal always closes.
        if c == '\'' {
            if i + 2 < n && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') && b[i + 2] != '\'' {
                // Lifetime (or `'static`): skip the quote, lex the ident
                // normally on the next iteration.
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                j += 1;
            } else {
                // 'x'
                j += 2;
            }
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            let mut text = String::new();
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                text.push(b[j]);
                j += 1;
            }
            out.push(Event::Ident { line, text });
            i = j;
            continue;
        }
        // Numbers; surface float-width suffixes as idents.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut text = String::new();
            while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                // `1.0.sqrt()` — stop a trailing method call from being
                // swallowed: a second dot ends the number.
                if b[j] == '.' && text.contains('.') {
                    break;
                }
                // `0.max(..)`: dot followed by an alphabetic char is a
                // method call, not a fraction.
                if b[j] == '.' && j + 1 < n && (b[j + 1].is_alphabetic() || b[j + 1] == '_') {
                    break;
                }
                text.push(b[j]);
                j += 1;
            }
            for suffix in ["f32", "f64"] {
                if text.ends_with(suffix) {
                    out.push(Event::Ident {
                        line,
                        text: suffix.to_string(),
                    });
                }
            }
            i = j;
            continue;
        }
        bump_line!(c);
        if !c.is_whitespace() {
            out.push(Event::Punct { line, ch: c });
        }
        i += 1;
    }
    out
}

/// Is position `i` the start of a raw (byte) string literal?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|e| match e {
                Event::Ident { text, .. } => Some(text),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// SystemTime::now()\nlet x = 1; /* Instant */";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn main() {}";
        assert_eq!(idents(src), vec!["fn", "main"]);
    }

    #[test]
    fn strings_are_not_code() {
        let src = r#"let s = "HashMap::new() \" quoted"; let t = 2;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_are_not_code() {
        let src = r##"let s = r#"Instant "quoted" inside"#; let t = b"x";"##;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        assert_eq!(
            idents(src),
            vec!["fn", "f", "a", "x", "a", "str", "char"]
        );
    }

    #[test]
    fn escaped_char_literal() {
        let src = r"let c = '\n'; let d = '\''; SystemTime";
        assert_eq!(idents(src), vec!["let", "c", "let", "d", "SystemTime"]);
    }

    #[test]
    fn doc_lines_are_separate_events() {
        let src = "/// example\n//! inner\n// plain\nfn f() {}";
        let evs = lex(src);
        assert!(matches!(&evs[0], Event::Doc { text, .. } if text == " example"));
        assert!(matches!(&evs[1], Event::Doc { text, .. } if text == " inner"));
        assert!(matches!(&evs[2], Event::Comment { text, .. } if text == " plain"));
    }

    #[test]
    fn float_suffixes_surface() {
        let src = "let x = 1.0f32; let y = 2f64; let z = 3.5;";
        assert_eq!(
            idents(src),
            vec!["let", "x", "f32", "let", "y", "f64", "let", "z"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let evs = lex(src);
        let b_line = evs
            .iter()
            .find_map(|e| match e {
                Event::Ident { line, text } if text == "b" => Some(*line),
                _ => None,
            })
            .expect("ident b lexed");
        assert_eq!(b_line, 3);
    }

    #[test]
    fn method_call_on_literal() {
        let src = "let x = 0.max(1); let y = 1.0.sqrt();";
        assert_eq!(idents(src), vec!["let", "x", "max", "let", "y", "sqrt"]);
    }
}
