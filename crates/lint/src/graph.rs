//! Intra-workspace call graph and field-access graph over parsed items.
//!
//! Built per crate from every file's [`crate::parse::ParsedFile`]. The
//! graph is name-resolved: a call site `name(..)` or `recv.name(..)`
//! binds to every same-named function defined in the analyzed file set
//! (the plane analysis then narrows method-call candidates — see
//! [`crate::planes`]). All storage is sorted, so reports derived from
//! the graph are byte-stable across runs.

use std::collections::BTreeMap;

use crate::lexer::Event;
use crate::parse::{self, ParsedFile};

/// One analyzed source file: its path, token stream, and parsed items.
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel: String,
    /// The lexed token stream.
    pub events: Vec<Event>,
    /// Items recovered from the stream.
    pub parsed: ParsedFile,
}

impl SourceFile {
    /// Lexes and parses `source` as `rel`.
    pub fn new(rel: &str, source: &str) -> Self {
        let events = crate::lexer::lex(source);
        let parsed = parse::parse(&events);
        SourceFile {
            rel: rel.to_string(),
            events,
            parsed,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the call is a method call (`recv.name(..)`).
    pub method: bool,
    /// The path qualifier for `Qual::name(..)` calls (`Type::new`,
    /// `module::helper`); `None` for bare and method calls.
    pub qual: Option<String>,
}

/// One function node with everything the plane analysis inspects.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// File the fn is defined in.
    pub file: String,
    /// 1-based line of the name.
    pub line: u32,
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type, if a method.
    pub owner: Option<String>,
    /// Annotated `plane:coordinator-only`.
    pub coordinator_only: bool,
    /// Defined inside a test region.
    pub in_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Field accesses (`recv.field` not followed by `(`) as
    /// `(field, line)`, in source order.
    pub fields: Vec<(String, u32)>,
    /// Every identifier mentioned in the signature or body, with its
    /// line, in source order.
    pub mentions: Vec<(String, u32)>,
}

/// The per-crate graph: function nodes plus a name index.
#[derive(Debug, Default)]
pub struct Graph {
    /// Nodes, sorted by `(file, line)`.
    pub fns: Vec<FnNode>,
    /// Name → indices into `fns`, each list sorted.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "let",
    "else", "move", "ref", "mut", "box", "dyn", "where", "fn", "impl",
    "pub", "use", "unsafe",
];

/// Builds the graph from a set of files (one crate's sources).
pub fn build(files: &[SourceFile]) -> Graph {
    let mut g = Graph::default();
    for sf in files {
        for def in &sf.parsed.fns {
            let mut node = FnNode {
                file: sf.rel.clone(),
                line: def.line,
                name: def.name.clone(),
                owner: def.owner.clone(),
                coordinator_only: def.coordinator_only,
                in_test: def.in_test,
                calls: Vec::new(),
                fields: Vec::new(),
                mentions: Vec::new(),
            };
            scan_range(&sf.events, def.sig.clone(), &mut node, true);
            scan_range(&sf.events, def.body.clone(), &mut node, false);
            g.fns.push(node);
        }
    }
    g.fns.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for (i, f) in g.fns.iter().enumerate() {
        g.by_name.entry(f.name.clone()).or_default().push(i);
    }
    g
}

/// Scans one event range for calls, field accesses, and mentions.
/// Signature ranges (`sig_only`) contribute mentions only: parameter
/// lists name types, not executed code.
fn scan_range(
    events: &[Event],
    range: std::ops::Range<usize>,
    node: &mut FnNode,
    sig_only: bool,
) {
    let slice = &events[range];
    // Significant (non-comment) neighbors for call/field detection.
    let sig_at = |mut k: usize, step_back: bool| -> Option<&Event> {
        loop {
            let ev = slice.get(k)?;
            match ev {
                Event::Comment { .. } | Event::Doc { .. } => {
                    if step_back {
                        k = k.checked_sub(1)?;
                    } else {
                        k += 1;
                    }
                }
                _ => return Some(ev),
            }
        }
    };
    for (k, ev) in slice.iter().enumerate() {
        let Event::Ident { line, text } = ev else {
            continue;
        };
        node.mentions.push((text.clone(), *line));
        if sig_only {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| sig_at(p, true));
        let prev2 = k.checked_sub(2).and_then(|p| sig_at(p, true));
        let next = sig_at(k + 1, false);
        let after_dot = matches!(prev, Some(Event::Punct { ch: '.', .. }))
            && !matches!(prev2, Some(Event::Punct { ch: '.', .. }));
        let before_paren = matches!(next, Some(Event::Punct { ch: '(', .. }));
        if before_paren && !NON_CALL_KEYWORDS.contains(&text.as_str()) {
            // `Qual::name(..)`: the two previous significant events are
            // `::` and the one before that the qualifier ident.
            let qual = if matches!(prev, Some(Event::Punct { ch: ':', .. }))
                && matches!(prev2, Some(Event::Punct { ch: ':', .. }))
            {
                match k.checked_sub(3).and_then(|p| sig_at(p, true)) {
                    Some(Event::Ident { text: q, .. }) => Some(q.clone()),
                    _ => None,
                }
            } else {
                None
            };
            node.calls.push(CallSite {
                name: text.clone(),
                line: *line,
                method: after_dot,
                qual,
            });
        } else if after_dot && !before_paren {
            node.fields.push((text.clone(), *line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> Graph {
        build(&[SourceFile::new("x.rs", src)])
    }

    #[test]
    fn calls_and_methods_distinguished() {
        let src = r#"
            fn f(x: Widget) {
                helper(1);
                x.spin();
                path::to::target(2);
                format!(x);
            }
        "#;
        let g = graph_of(src);
        let f = &g.fns[0];
        let names: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.method))
            .collect();
        assert_eq!(
            names,
            vec![("helper", false), ("spin", true), ("target", false)]
        );
    }

    #[test]
    fn field_access_vs_method_vs_range() {
        let src = r#"
            fn f(s: S) -> u64 {
                let a = s.field;
                let b = s.method();
                for i in lo..hi { let _ = i; }
                a
            }
        "#;
        let g = graph_of(src);
        let f = &g.fns[0];
        let fields: Vec<&str> = f.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert!(fields.contains(&"field"));
        assert!(!fields.contains(&"method"), "method calls are not fields");
        assert!(!fields.contains(&"hi"), "range endpoints are not fields");
    }

    #[test]
    fn signature_mentions_recorded_but_not_calls() {
        let src = "fn f(t: &FileTable) -> bool { true }";
        let g = graph_of(src);
        let f = &g.fns[0];
        assert!(f.mentions.iter().any(|(n, _)| n == "FileTable"));
        assert!(f.calls.is_empty());
    }

    #[test]
    fn name_index_is_sorted_and_total() {
        let src = "fn a() { b(); }\nfn b() {}\nimpl T { fn b(&self) {} }";
        let g = graph_of(src);
        assert_eq!(g.by_name["b"].len(), 2);
        assert_eq!(g.fns.len(), 3);
    }

    #[test]
    fn deterministic_across_builds() {
        let src = "fn a() { c(); }\nfn c() { a.x; }\n";
        let a = format!("{:?}", graph_of(src).fns);
        let b = format!("{:?}", graph_of(src).fns);
        assert_eq!(a, b);
    }
}
