//! `sdfs-lint`: project-specific determinism lints.
//!
//! The scorecard (`core::check`) validates the simulator's *outputs*
//! against the paper; this crate guards the *sources* against the ways
//! nondeterminism sneaks back in. A hand-rolled lexer ([`lexer`])
//! tokenizes each workspace source file, and a rule engine ([`rules`])
//! flags wall-clock reads, OS entropy, default-hasher maps, library
//! `.unwrap()`s, and `f32` statistics — each scoped to the crates where
//! it matters. Run it as `repro lint`; `scripts/verify.sh` gates on it.
//!
//! Zero dependencies by design: the linter must never be the thing that
//! drags a nondeterministic dependency into the workspace.

pub mod lexer;
pub mod rules;

pub use rules::{Rule, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints a single source string as if it lived in crate `crate_name` at
/// `rel_path`. This is the unit-testable core; [`lint_workspace`] is the
/// filesystem walker over it.
pub fn lint_str(crate_name: &str, rel_path: &str, source: &str) -> Vec<Violation> {
    rules::scan(&lexer::lex(source), crate_name, rel_path)
}

/// Walks `<root>/crates/*/src/**/*.rs` (sorted, so report order is
/// stable) and lints every file against the rules scoped to its crate.
/// Integration-test and bench directories outside `src/` are not
/// scanned: the rules only bind library code.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for dir in crate_dirs {
        let crate_name = match dir.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            out.extend(lint_str(&crate_name, &rel, &source));
        }
    }
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_violation_in_fake_tree_is_caught() {
        // Build a fake workspace in a temp dir and seed one violation,
        // mirroring the acceptance criterion for `repro lint`.
        let base = std::env::temp_dir().join(format!("sdfs_lint_test_{}", std::process::id()));
        let src = base.join("crates/simkit/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(
            src.join("lib.rs"),
            "pub fn now() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
        )
        .expect("write seed file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert_eq!(v.len(), 2, "both SystemTime mentions flagged: {v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::WallClock));
        assert_eq!(v[0].file, "crates/simkit/src/lib.rs");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn clean_fake_tree_passes() {
        let base = std::env::temp_dir().join(format!("sdfs_lint_clean_{}", std::process::id()));
        let src = base.join("crates/core/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(src.join("lib.rs"), "pub fn f() -> u64 { 42 }\n").expect("write file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert!(v.is_empty(), "clean tree must produce no violations: {v:?}");
    }
}
