//! `sdfs-lint`: project-specific determinism lints and the PlaneCheck
//! static analyzer.
//!
//! The scorecard (`core::check`) validates the simulator's *outputs*
//! against the paper; this crate guards the *sources* against the ways
//! nondeterminism sneaks back in. A hand-rolled lexer ([`lexer`])
//! tokenizes each workspace source file, and a rule engine ([`rules`])
//! flags wall-clock reads, OS entropy, default-hasher maps, library
//! `.unwrap()`s, `f32` statistics, and detached threads — each scoped
//! to the crates where it matters. On top of the lexer, a small parser
//! ([`parse`]) recovers items, [`graph`] builds a per-crate call and
//! field-access graph, and [`planes`] statically verifies the parallel
//! engine's worker/coordinator ownership rule (DESIGN.md §14). Run it
//! as `repro lint`; `scripts/verify.sh` gates on it.
//!
//! Zero dependencies by design: the linter must never be the thing that
//! drags a nondeterministic dependency into the workspace.

pub mod graph;
pub mod lexer;
pub mod parse;
pub mod planes;
pub mod rules;

pub use rules::{AllowSite, Rule, ScanOutput, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints a single source string as if it lived in crate `crate_name` at
/// `rel_path`. This is the unit-testable core; [`lint_workspace`] is the
/// filesystem walker over it. Plane analysis is whole-crate, so it is
/// not run here — see [`lint_workspace`] / [`planes::check`].
pub fn lint_str(crate_name: &str, rel_path: &str, source: &str) -> Vec<Violation> {
    rules::scan(&lexer::lex(source), crate_name, rel_path)
}

/// One workspace source file, read and keyed for the scan.
struct WorkspaceFile {
    crate_name: String,
    rel: String,
    source: String,
}

/// Walks `<root>/crates/*/{src,benches}/**/*.rs` (sorted, so report
/// order is byte-stable) and reads every file. Integration-test
/// directories are not scanned: the rules exempt test code anyway.
fn collect_workspace(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for dir in crate_dirs {
        let crate_name = match dir.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        let mut files = Vec::new();
        for sub in ["src", "benches"] {
            let sub = dir.join(sub);
            if sub.is_dir() {
                collect_rs_files(&sub, &mut files)?;
            }
        }
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(WorkspaceFile {
                crate_name: crate_name.clone(),
                rel,
                source,
            });
        }
    }
    Ok(out)
}

/// Lints every workspace file against the rules scoped to its crate,
/// then runs the PlaneCheck analysis ([`planes::check`]) over the
/// `spritefs` sources and appends its findings.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let files = collect_workspace(root)?;
    let mut out = Vec::new();
    let mut spritefs: Vec<graph::SourceFile> = Vec::new();
    for f in &files {
        out.extend(rules::scan(&lexer::lex(&f.source), &f.crate_name, &f.rel));
        if f.crate_name == "spritefs" {
            spritefs.push(graph::SourceFile::new(&f.rel, &f.source));
        }
    }
    out.extend(planes::check(&spritefs));
    Ok(out)
}

/// The worker-plane reachability set for the workspace's `spritefs`
/// crate, as `(file, line, fn name)` sorted — the `repro lint` summary
/// prints its size, and tests pin its roots.
pub fn workspace_worker_plane(root: &Path) -> io::Result<Vec<(String, u32, String)>> {
    let files = collect_workspace(root)?;
    let spritefs: Vec<graph::SourceFile> = files
        .iter()
        .filter(|f| f.crate_name == "spritefs")
        .map(|f| graph::SourceFile::new(&f.rel, &f.source))
        .collect();
    Ok(planes::worker_plane(&spritefs))
}

/// Lists every `lint:allow` / `lint:allow-file` site in the workspace
/// with its staleness verdict (`repro lint --audit`), sorted by
/// `(file, line)`.
pub fn audit_workspace(root: &Path) -> io::Result<Vec<AllowSite>> {
    let files = collect_workspace(root)?;
    let mut out = Vec::new();
    for f in &files {
        out.extend(rules::scan_full(&lexer::lex(&f.source), &f.crate_name, &f.rel).allows);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_violation_in_fake_tree_is_caught() {
        // Build a fake workspace in a temp dir and seed one violation,
        // mirroring the acceptance criterion for `repro lint`.
        let base = std::env::temp_dir().join(format!("sdfs_lint_test_{}", std::process::id()));
        let src = base.join("crates/simkit/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(
            src.join("lib.rs"),
            "pub fn now() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
        )
        .expect("write seed file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert_eq!(v.len(), 2, "both SystemTime mentions flagged: {v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::WallClock));
        assert_eq!(v[0].file, "crates/simkit/src/lib.rs");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn clean_fake_tree_passes() {
        let base = std::env::temp_dir().join(format!("sdfs_lint_clean_{}", std::process::id()));
        let src = base.join("crates/core/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(src.join("lib.rs"), "pub fn f() -> u64 { 42 }\n").expect("write file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert!(v.is_empty(), "clean tree must produce no violations: {v:?}");
    }

    #[test]
    fn bench_benches_dir_is_scanned() {
        let base = std::env::temp_dir().join(format!("sdfs_lint_bench_{}", std::process::id()));
        let benches = base.join("crates/bench/benches");
        fs::create_dir_all(&benches).expect("create temp tree");
        fs::write(
            benches.join("tables.rs"),
            "use std::collections::HashMap;\nfn main() {}\n",
        )
        .expect("write bench file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DefaultHasher);
        assert_eq!(v[0].file, "crates/bench/benches/tables.rs");
    }

    #[test]
    fn plane_violation_in_fake_spritefs_tree_is_caught() {
        let base = std::env::temp_dir().join(format!("sdfs_lint_plane_{}", std::process::id()));
        let src = base.join("crates/spritefs/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(
            src.join("lib.rs"),
            "pub fn worker_main() { data_read(); }\n\
             pub fn data_read() { let t: &FileTable = table(); let _ = t; }\n",
        )
        .expect("write seed file");
        let v = lint_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PlaneSafety);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn audit_reports_stale_and_live_sites() {
        let base = std::env::temp_dir().join(format!("sdfs_lint_audit_{}", std::process::id()));
        let src = base.join("crates/simkit/src");
        fs::create_dir_all(&src).expect("create temp tree");
        fs::write(
            src.join("lib.rs"),
            "// lint:allow(default-hasher)\nuse std::collections::HashMap;\n\
             // lint:allow(wall-clock)\npub fn f() {}\n",
        )
        .expect("write seed file");
        let sites = audit_workspace(&base).expect("walk temp tree");
        fs::remove_dir_all(&base).ok();
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert!(!sites[0].stale, "live default-hasher allow: {:?}", sites[0]);
        assert!(sites[1].stale, "stale wall-clock allow: {:?}", sites[1]);
    }
}
