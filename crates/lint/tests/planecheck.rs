//! Fixture tests for the PlaneCheck static analyzer: the seeded
//! mutation is caught with file/line, the real `spritefs` tree passes
//! clean, and reports are byte-deterministic.

use std::path::Path;

use sdfs_lint::{graph::SourceFile, planes, Rule};

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Reads the real `spritefs` sources into analyzer input.
fn real_spritefs() -> Vec<SourceFile> {
    let src = repo_root().join("crates/spritefs/src");
    let mut paths: Vec<_> = std::fs::read_dir(&src)
        .expect("read spritefs src")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let rel = format!(
                "crates/spritefs/src/{}",
                p.file_name().expect("file name").to_string_lossy()
            );
            let source = std::fs::read_to_string(p).expect("read source");
            SourceFile::new(&rel, &source)
        })
        .collect()
}

#[test]
fn real_spritefs_tree_is_plane_clean() {
    let files = real_spritefs();
    let v = planes::check(&files);
    assert!(
        v.is_empty(),
        "plane violations on main:\n{}",
        v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn real_worker_plane_is_nonempty_and_rooted() {
    let files = real_spritefs();
    let wp = planes::worker_plane(&files);
    let names: Vec<&str> = wp.iter().map(|(_, _, n)| n.as_str()).collect();
    for root in planes::ROOTS {
        assert!(
            names.contains(root),
            "root `{root}` missing from worker plane: {names:?}"
        );
    }
    // The data-plane cache path must be in the worker plane — if it is
    // not, the analysis is vacuously passing.
    assert!(
        names.contains(&"data_cached_read"),
        "data_cached_read not reached: {names:?}"
    );
    assert!(wp.len() >= 5, "implausibly small worker plane: {wp:?}");
}

#[test]
fn seeded_mutation_is_caught_with_file_and_line() {
    // The acceptance fixture: the real tree, plus one seeded mutation
    // that moves a SrvFileState read into a worker-reachable fn.
    let mut files = real_spritefs();
    files.push(SourceFile::new(
        "crates/spritefs/src/seeded.rs",
        "pub fn run_client_task_probe() {}\n\
         pub fn worker_main_seeded() { run_client_task(); }\n\
         pub fn run_client_task() { peek_state(); }\n\
         pub fn peek_state() {\n\
             let st: &SrvFileState = coordinator_state();\n\
             let _ = st.opens;\n\
         }\n",
    ));
    let v = planes::check(&files);
    assert!(!v.is_empty(), "seeded mutation not caught");
    let hit = v
        .iter()
        .find(|x| x.file == "crates/spritefs/src/seeded.rs" && x.line == 5)
        .unwrap_or_else(|| panic!("no finding at seeded.rs:5: {v:?}"));
    assert_eq!(hit.rule, Rule::PlaneSafety);
    assert!(
        hit.detail.as_deref().is_some_and(|d| d.contains("SrvFileState")),
        "{hit:?}"
    );
}

#[test]
fn seeded_causal_trace_touch_is_caught_statically() {
    // The CausalProf plane fixture: worker-side event buffering must
    // stay per-shard; a worker-plane helper that flushes straight into
    // the coordinator-owned `CausalTrace` is the bug class PlaneCheck
    // exists for (the runtime half of this fixture lives in
    // `spritefs::causal`'s `--racecheck` test).
    let mut files = real_spritefs();
    files.push(SourceFile::new(
        "crates/spritefs/src/seeded.rs",
        "pub fn worker_main_seeded() { run_client_task(); }\n\
         pub fn run_client_task() { flush_events(); }\n\
         pub fn flush_events() {\n\
             let c: &mut CausalTrace = trace();\n\
             c.record_event(0, 0, 0);\n\
         }\n",
    ));
    let v = planes::check(&files);
    let hit = v
        .iter()
        .find(|x| x.file == "crates/spritefs/src/seeded.rs")
        .unwrap_or_else(|| panic!("seeded CausalTrace touch not caught: {v:?}"));
    assert_eq!(hit.rule, Rule::PlaneSafety);
    assert_eq!(hit.line, 4, "{hit:?}");
    assert!(
        hit.detail.as_deref().is_some_and(|d| d.contains("CausalTrace")),
        "{hit:?}"
    );
}

#[test]
fn report_bytes_are_deterministic() {
    let render = || {
        let mut files = real_spritefs();
        files.push(SourceFile::new(
            "crates/spritefs/src/seeded.rs",
            "pub fn worker_main_x() { run_client_task(); }\n\
             pub fn bad(t: &FileTable, s: &SrvFileState) {}\n\
             pub fn run_client_task() { bad(); }\n",
        ));
        planes::check(&files)
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = render();
    let b = render();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn workspace_audit_has_no_stale_allows() {
    let sites = sdfs_lint::audit_workspace(repo_root()).expect("audit");
    assert!(!sites.is_empty(), "expected known allow sites in simkit");
    let stale: Vec<_> = sites.iter().filter(|s| s.stale).collect();
    assert!(stale.is_empty(), "stale allows on main: {stale:?}");
}

#[test]
fn full_workspace_lint_is_clean() {
    let v = sdfs_lint::lint_workspace(repo_root()).expect("lint");
    assert!(
        v.is_empty(),
        "lint violations on main:\n{}",
        v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("\n")
    );
}
