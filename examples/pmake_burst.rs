//! pmake under process migration: the burstiness experiment.
//!
//! Generates one day of synthetic workload, runs it on the cluster, and
//! contrasts overall file throughput with the throughput of migrated
//! processes over 10-second intervals — the paper found migration made
//! bursts about six times more intense, with single users briefly
//! exceeding the raw bandwidth of the Ethernet thanks to client caching.
//!
//! Run with: `cargo run --release --example pmake_burst`

use sdfs_core::activity::analyze_activity;
use sdfs_simkit::{SimDuration, SimTime};
use sdfs_spritefs::{Cluster, Config, VecSink};
use sdfs_trace::merge::merge_vecs;
use sdfs_workload::{Generator, TraceSpec, WorkloadConfig};

fn main() {
    let wl = WorkloadConfig {
        num_clients: 16,
        num_users: 24,
        // Lots of pmake: every compile-capable user fans out.
        migration_fraction: 0.5,
        ..WorkloadConfig::default()
    };
    let wl = wl.for_trace(TraceSpec {
        seed: 42,
        heavy_sim: false,
    });

    let cluster_cfg = Config {
        num_clients: 16,
        ..Config::default()
    };
    let mut gen = Generator::new(wl);
    let mut cluster = Cluster::new(cluster_cfg.clone(), VecSink::new(cluster_cfg.num_servers));
    cluster.preload(&gen.preload_list());
    let ops = gen.generate_day(0);
    println!("executing {} operations...", ops.len());
    cluster.run(ops, SimTime::from_secs(86_400));

    let records = merge_vecs(cluster.into_sink().per_server);
    println!("{} trace records\n", records.len());

    for (label, migrated_only) in [("all users", false), ("migrated processes", true)] {
        let ten_sec = analyze_activity(&records, SimDuration::from_secs(10), migrated_only);
        let ten_min = analyze_activity(&records, SimDuration::from_mins(10), migrated_only);
        println!("{label}:");
        println!(
            "  10-min: avg {:.1} KB/s per active user, peak user {:.0} KB/s",
            ten_min.throughput_per_user.mean() / 1e3,
            ten_min.peak_user_throughput / 1e3
        );
        println!(
            "  10-sec: avg {:.1} KB/s per active user, peak user {:.0} KB/s, peak total {:.0} KB/s",
            ten_sec.throughput_per_user.mean() / 1e3,
            ten_sec.peak_user_throughput / 1e3,
            ten_sec.peak_total_throughput / 1e3
        );
    }

    // The paper's headline: the migrated burst rate is several times the
    // overall average.
    let all = analyze_activity(&records, SimDuration::from_mins(10), false);
    let mig = analyze_activity(&records, SimDuration::from_mins(10), true);
    if all.throughput_per_user.mean() > 0.0 {
        println!(
            "\nmigration burst factor (10-min avg): {:.1}x (the paper saw ~6x)",
            mig.throughput_per_user.mean() / all.throughput_per_user.mean()
        );
    }
}
