//! Quickstart: drive the simulated Sprite cluster by hand.
//!
//! Builds a small cluster, issues a handful of kernel-call operations
//! from two clients, and shows the three things the study measures:
//! trace records, cache counters, and consistency actions.
//!
//! Run with: `cargo run --example quickstart`

use sdfs_simkit::SimTime;
use sdfs_spritefs::{AppOp, Cluster, Config, OpKind, VecSink};
use sdfs_trace::merge::merge_vecs;
use sdfs_trace::{ClientId, FileId, Handle, OpenMode, Pid, UserId};

fn op(t: u64, client: u16, kind: OpKind) -> AppOp {
    AppOp {
        time: SimTime::from_secs(t),
        client: ClientId(client),
        user: UserId(client as u32),
        pid: Pid(1),
        migrated: false,
        kind,
    }
}

fn main() {
    let cfg = Config::small();
    let mut cluster = Cluster::new(cfg.clone(), VecSink::new(cfg.num_servers));

    // A file that exists before the trace starts.
    cluster.preload(&[(FileId(0), 64 << 10, false)]);

    let ops = vec![
        // Client 0 reads the whole file (cold cache: every block misses).
        op(
            1,
            0,
            OpKind::Open {
                fd: Handle(1),
                file: FileId(0),
                mode: OpenMode::Read,
            },
        ),
        op(
            1,
            0,
            OpKind::Read {
                fd: Handle(1),
                len: 64 << 10,
            },
        ),
        op(2, 0, OpKind::Close { fd: Handle(1) }),
        // ... and again (warm cache: every block hits).
        op(
            3,
            0,
            OpKind::Open {
                fd: Handle(2),
                file: FileId(0),
                mode: OpenMode::Read,
            },
        ),
        op(
            3,
            0,
            OpKind::Read {
                fd: Handle(2),
                len: 64 << 10,
            },
        ),
        op(4, 0, OpKind::Close { fd: Handle(2) }),
        // Client 1 rewrites the file; the version stamp changes.
        op(
            10,
            1,
            OpKind::Open {
                fd: Handle(3),
                file: FileId(0),
                mode: OpenMode::Write,
            },
        ),
        op(
            10,
            1,
            OpKind::Write {
                fd: Handle(3),
                len: 8 << 10,
            },
        ),
        op(11, 1, OpKind::Close { fd: Handle(3) }),
        // Client 0 reopens within 30 s: the server recalls client 1's
        // dirty data, and client 0's stale blocks are invalidated.
        op(
            15,
            0,
            OpKind::Open {
                fd: Handle(4),
                file: FileId(0),
                mode: OpenMode::Read,
            },
        ),
        op(
            15,
            0,
            OpKind::Read {
                fd: Handle(4),
                len: 8 << 10,
            },
        ),
        op(16, 0, OpKind::Close { fd: Handle(4) }),
    ];
    // Run and let the 30-second delayed-write daemon finish its work.
    cluster.run(ops, SimTime::from_secs(120));

    println!("== per-client counters ==");
    for client in cluster.clients().iter().take(2) {
        let c = &client.metrics.counters;
        println!(
            "client {}: read ops {} (misses {}), writeback bytes {}, \
             stale blocks {}, recalls answered {}",
            client.id,
            c.get("cache.read.ops"),
            c.get("cache.read.miss.ops"),
            c.get("cache.writeback.bytes"),
            c.get("consist.stale.blocks"),
            c.get("clean.recall.blocks"),
        );
    }

    println!("\n== merged trace ==");
    let sink = cluster.into_sink();
    let records = merge_vecs(sink.per_server);
    for rec in &records {
        println!("{} {} {}", rec.time, rec.client, rec.kind_name());
    }
    println!("\n{} records total", records.len());
}
