//! Cache sizing ablation: how big do client caches need to be?
//!
//! The 1985 BSD study predicted ~10% miss ratios for 4-Mbyte caches; the
//! Sprite measurements found misses four times higher because files had
//! grown. This example sweeps client memory (and hence achievable cache
//! size) and reports the read miss ratio and server traffic filter, plus
//! the write-back delay ablation from DESIGN.md.
//!
//! Run with: `cargo run --release --example cache_sizing`

use sdfs_core::cache_tables::table6;
use sdfs_core::study::writeback_delay_ablation;
use sdfs_core::{Study, StudyConfig};

fn main() {
    let base = StudyConfig::quick();

    println!("Client memory sweep (read miss ratio vs cache headroom):");
    println!(
        "{:>10} {:>14} {:>16} {:>16}",
        "memory", "miss ratio", "miss traffic", "writeback"
    );
    for mem_mb in [4u64, 8, 16, 24, 32] {
        let mut cfg = base.clone();
        cfg.cluster.client_mem_bytes = mem_mb << 20;
        cfg.cluster.client_mem_alt_bytes = mem_mb << 20;
        cfg.cluster.reserved_bytes = (mem_mb << 20) / 6;
        cfg.counter_days = 1;
        let study = Study::new(cfg);
        let counters = study.run_counters();
        let t6 = table6(&counters.total, &counters.per_day);
        println!(
            "{:>8}MB {:>13.1}% {:>15.1}% {:>15.1}%",
            mem_mb, t6.read_miss_pct.0.pct, t6.read_miss_traffic_pct.0.pct, t6.writeback_pct.pct
        );
    }

    println!("\nWrite-back delay sweep (Section 6 suggests longer delays):");
    println!("{:>10} {:>18}", "delay", "writeback traffic");
    for (delay, pct) in writeback_delay_ablation(&base, &[5, 30, 120, 600]) {
        println!("{:>9}s {:>17.1}%", delay, pct);
    }
    println!(
        "\nLonger delays absorb more overwrites and deletions before the\n\
         data reaches the server — at the cost of more data lost in a\n\
         client crash (the paper's Section 5.4 trade-off)."
    );
}
