//! Consistency mechanisms compared (Sections 5.5–5.6).
//!
//! Generates one trace, then:
//!
//! 1. sweeps the NFS-style polling interval and reports stale-data
//!    errors (extending the paper's Table 11 beyond 3 s and 60 s), and
//! 2. runs the three consistency-overhead simulators of Table 12
//!    (Sprite, modified Sprite, token-based).
//!
//! Run with: `cargo run --release --example consistency_comparison`

use sdfs_core::overhead::{simulate, Algorithm};
use sdfs_core::staleness::simulate_polling;
use sdfs_core::Study;
use sdfs_simkit::SimDuration;
use sdfs_workload::TraceSpec;

fn main() {
    let mut cfg = sdfs_core::StudyConfig::quick();
    cfg.workload.num_clients = 16;
    cfg.workload.num_users = 32;
    cfg.cluster.num_clients = 16;
    let study = Study::new(cfg);
    let spec = TraceSpec {
        seed: 7,
        heavy_sim: false,
    };
    eprintln!("generating trace...");
    let records = study.run_trace_records(spec);
    eprintln!("{} records", records.len());

    println!("Stale-data errors vs polling interval (Table 11 extended):");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "interval", "errors", "errors/hour", "users hit"
    );
    for secs in [1u64, 3, 10, 30, 60, 300] {
        let out = simulate_polling(&records, SimDuration::from_secs(secs));
        println!(
            "{:>9}s {:>10} {:>14.2} {:>11.0}%",
            secs,
            out.errors,
            out.errors_per_hour,
            out.users_affected_pct()
        );
    }

    println!("\nConsistency overhead on write-shared files (Table 12):");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "algorithm", "app bytes", "alg bytes", "bytes ratio", "RPC ratio"
    );
    for (name, alg) in [
        ("Sprite", Algorithm::Sprite),
        ("Modified Sprite", Algorithm::SpriteModified),
        ("Token-based", Algorithm::Token),
    ] {
        let r = simulate(&records, alg, 4096, SimDuration::from_secs(30));
        println!(
            "{:<18} {:>12} {:>12} {:>12.2} {:>12.2}",
            name,
            r.app_bytes,
            r.alg_bytes,
            r.bytes_ratio(),
            r.rpc_ratio()
        );
    }
    println!(
        "\nThe paper's conclusion: no clear winner — pick the simplest\n\
         mechanism unless write-sharing grows."
    );
}
